"""Placement & migration-state bugfix batch (PR 6 satellites).

1. ``assign_vm_auto`` must never pick a quarantined or deregistered NSM:
   a just-quarantined NSM has zero connection-table entries and would
   otherwise always look least-loaded.
2. A recycled NSM numeric id must not inherit its dead predecessor's
   health verdict (stale ``_last_ack`` → insta-quarantine; stale
   ``quarantined`` entry → misreported as dead and reaped).
3. Migration forwarding chains stay one hop: an A→B→A round trip leaves
   B forwarding to A and nothing else — in particular no self-forward on
   A shadowing its own live state — and every forward reclaims when its
   connection or listener dies (migrate/close soak ends with zero
   entries engine-wide).
"""

import pytest

from repro.core.autoscaler import forward_entry_count, forward_leak_count
from repro.core.host import NetKernelHost
from repro.core.nqe import NQE_POOL
from repro.errors import ConfigurationError
from repro.net.fabric import Network
from repro.sim import Simulator

PORT = 7300


def _host_with_two_nsms():
    sim = Simulator()
    host = NetKernelHost(sim, Network(sim))
    nsm_a = host.add_nsm("nsm-a", vcpus=1, stack="kernel")
    nsm_b = host.add_nsm("nsm-b", vcpus=1, stack="kernel")
    return sim, host, nsm_a, nsm_b


class TestAutoAssignSkipsQuarantined:
    def test_quarantined_nsm_is_never_a_candidate(self):
        """nsm-a has the lower id and zero table entries, so a candidate
        list that ignored ``active`` would always pick it."""
        sim, host, nsm_a, nsm_b = _host_with_two_nsms()
        engine = host.coreengine
        engine.quarantine_nsm(nsm_a.nsm_id, reason="test")
        vm = host.add_vm("vm")  # nsm=None -> assign_vm_auto
        assert engine.vm_to_nsm[vm.vm_id] == nsm_b.nsm_id

        vm2 = host.add_vm("vm2", nsm=nsm_b)
        assert engine.assign_vm_auto(vm2.vm_id) == nsm_b.nsm_id

    def test_no_active_nsm_raises_instead_of_assigning_a_corpse(self):
        sim, host, nsm_a, nsm_b = _host_with_two_nsms()
        engine = host.coreengine
        vm = host.add_vm("vm", nsm=nsm_a)
        engine.quarantine_nsm(nsm_a.nsm_id, reason="test")
        engine.quarantine_nsm(nsm_b.nsm_id, reason="test")
        with pytest.raises(ConfigurationError):
            engine.assign_vm_auto(vm.vm_id)

    def test_deregistered_nsm_is_never_a_candidate(self):
        sim, host, nsm_a, nsm_b = _host_with_two_nsms()
        engine = host.coreengine
        host.remove_nsm(nsm_a)
        vm = host.add_vm("vm")
        assert engine.vm_to_nsm[vm.vm_id] == nsm_b.nsm_id


class TestRecycledNsmId:
    def test_fresh_nsm_does_not_inherit_dead_predecessors_verdict(self):
        """Quarantine nsm-a via the health monitor, then force its
        numeric id to be re-issued.  The fresh NSM must not be born
        quarantined, and a stale last-ack timestamp must not let the
        monitor insta-quarantine it."""
        sim, host, nsm_a, nsm_b = _host_with_two_nsms()
        host.add_vm("vm", nsm=nsm_a)
        host.enable_failover(heartbeat_interval=1e-3,
                             detection_timeout=5e-3)
        engine = host.coreengine
        sim.call_at(2e-3, nsm_a.servicelib.crash)
        sim.run(until=0.02)
        dead_id = nsm_a.nsm_id
        assert dead_id in engine.quarantined

        # Simulate an id allocator that recycles the dead id, with the
        # predecessor's ack timestamp still on the books.
        engine._last_ack[dead_id] = 0.0
        engine._ids = iter([dead_id])
        fresh = host.add_nsm("fresh", vcpus=1, stack="kernel")
        assert fresh.nsm_id == dead_id

        assert dead_id not in engine.quarantined
        # Ride several detection windows: the fresh NSM answers its own
        # heartbeats and must stay in service.
        sim.run(until=sim.now + 0.02)
        assert dead_id not in engine.quarantined
        reg = engine._nsm_registration(dead_id)
        assert reg is not None and reg.active
        assert engine._last_ack[dead_id] > 0.0


class _EchoFixture:
    """Polling echo server on nsm-a plus a client homed on its own NSM,
    with a stop flag so the listener is closed deterministically."""

    def __init__(self):
        self.sim, self.host, self.nsm_a, self.nsm_b = _host_with_two_nsms()
        self.nsm_client = self.host.add_nsm("nsm-client", vcpus=1,
                                            stack="kernel")
        self.server_vm = self.host.add_vm("server", nsm=self.nsm_a)
        self.client_vm = self.host.add_vm("client", nsm=self.nsm_client)
        self.server_api = self.host.socket_api(self.server_vm)
        self.client_api = self.host.socket_api(self.client_vm)
        self.stop = {"flag": False}
        self.stats = {"echoed": 0, "listener_closed": 0}
        self.server_vm.spawn(self._server())

    def _server(self):
        api, sim = self.server_api, self.sim
        lsock = yield from api.socket()
        yield from api.bind(lsock, PORT)
        yield from api.listen(lsock, backlog=32)
        while not self.stop["flag"]:
            conn = api.accept_nonblocking(lsock)
            if conn is None:
                yield sim.timeout(1e-4)
                continue
            sim.process(self._echo(conn))
        yield from api.close(lsock)
        self.stats["listener_closed"] += 1

    def _echo(self, conn):
        api = self.server_api
        while True:
            data = yield from api.recv(conn, 4096)
            if not data:
                yield from api.close(conn)
                return
            yield from api.send(conn, data)
            self.stats["echoed"] += 1

    def engines(self):
        return (self.nsm_a.stack.engine, self.nsm_b.stack.engine,
                self.nsm_client.stack.engine)


class TestForwardChainCollapse:
    def test_a_b_a_round_trip_stays_one_hop(self):
        fx = _EchoFixture()
        sim, host = fx.sim, fx.host
        done = {}

        def client():
            api = fx.client_api
            sock = yield from api.socket()
            yield from api.connect(sock, ("nsm-a", PORT))
            yield from api.send(sock, b"hop0")
            done["hop0"] = yield from api.recv(sock, 64)
            yield sim.timeout(20e-3)  # ride through A->B
            yield from api.send(sock, b"hop1")
            done["hop1"] = yield from api.recv(sock, 64)
            yield sim.timeout(20e-3)  # ride through B->A
            yield from api.send(sock, b"hop2")
            done["hop2"] = yield from api.recv(sock, 64)
            yield from api.close(sock)

        fx.client_vm.spawn(client())
        sim.call_at(10e-3, lambda: sim.process(
            host.migrate_vm(fx.server_vm, fx.nsm_b)))
        sim.call_at(30e-3, lambda: sim.process(
            host.migrate_vm(fx.server_vm, fx.nsm_a)))
        # Pause after both moves, before shutdown: the forwards are live.
        sim.run(until=0.05)
        engine_a, engine_b, _ = fx.engines()
        # Collapsed chain: B (the intermediate hop) forwards the
        # listener port straight to A; A — the current owner — holds no
        # entry at all, in particular no self-forward shadowing its own
        # live listener.
        assert engine_b._port_forwards[PORT] is engine_a
        assert PORT not in engine_a._port_forwards
        assert PORT in engine_a._listeners
        assert engine_a._listeners[PORT]._port_forwarders == [engine_b]
        # No dangling entries anywhere, even with the forwards live.
        assert forward_leak_count(host) == 0

        sim.call_at(60e-3, lambda: fx.stop.update(flag=True))
        sim.run(until=0.1)
        assert done == {"hop0": b"hop0", "hop1": b"hop1", "hop2": b"hop2"}
        assert fx.stats["listener_closed"] == 1
        # Closing the listener reclaimed B's port forward; the conn's
        # forwards died with its close.
        assert forward_leak_count(host) == 0
        assert forward_entry_count(host) == 0

    def test_migrate_close_soak_reclaims_every_forward(self):
        """Short-lived connections against a server that keeps bouncing
        A->B->A->B: every conn close must reclaim its forwards on every
        engine that ever hosted it, so the run ends at zero entries."""
        fx = _EchoFixture()
        sim, host = fx.sim, fx.host
        counters = {"rtts": 0, "errors": 0}

        def client_loop():
            api = fx.client_api
            while not fx.stop["flag"]:
                try:
                    sock = yield from api.socket()
                    yield from api.connect(sock, ("nsm-a", PORT))
                    yield from api.send(sock, b"ping")
                    yield from api.recv(sock, 64)
                    yield from api.close(sock)
                    counters["rtts"] += 1
                except Exception:
                    counters["errors"] += 1
                yield sim.timeout(1.5e-3)

        def bouncer():
            targets = [fx.nsm_b, fx.nsm_a, fx.nsm_b]
            for target in targets:
                yield sim.timeout(12e-3)
                yield from host.migrate_vm(fx.server_vm, target)

        pool_before = NQE_POOL.outstanding
        fx.client_vm.spawn(client_loop())
        sim.process(bouncer())
        sim.call_at(60e-3, lambda: fx.stop.update(flag=True))
        sim.run(until=0.12)

        assert counters["rtts"] >= 10
        assert counters["errors"] == 0
        assert fx.stats["listener_closed"] == 1
        assert forward_leak_count(host) == 0
        assert forward_entry_count(host) == 0
        assert len(host.coreengine.table) == 0
        assert NQE_POOL.outstanding - pool_before == 0
