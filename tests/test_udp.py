"""Tests for UDP (SOCK_DGRAM) support across the whole system.

Table 1 of the paper redirects datagram sockets alongside stream ones;
these tests cover the stack-level UDP layer and the full NetKernel and
baseline datagram paths.
"""

import pytest

from repro.baseline.host import BaselineHost
from repro.core.host import NetKernelHost
from repro.errors import (
    AddressInUseError,
    MessageTooLargeError,
    SocketError,
)
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.stack.kernel_stack import KernelStack
from repro.stack.udp import MAX_DATAGRAM
from repro.cpu.core import Core
from repro.units import gbps, usec


def make_stacks(sim):
    network = Network(sim, default_rate_bps=gbps(10),
                      default_delay_sec=usec(25))
    a = KernelStack(sim, network, "hostA", [Core(sim)])
    b = KernelStack(sim, network, "hostB", [Core(sim)])
    return network, a, b


class TestUdpLayer:
    def test_datagram_roundtrip(self):
        sim = Simulator()
        _, a, b = make_stacks(sim)
        server = b.udp_socket()
        b.udp_bind(server, 53)
        client = a.udp_socket()
        a.udp_sendto(client, b"query", ("hostB", 53))
        sim.run()
        data, src = b.udp_recvfrom(server, 100)
        assert data == b"query"
        assert src[0] == "hostA"
        # Reply to the source address.
        b.udp_sendto(server, b"answer", src)
        sim.run()
        reply, reply_src = a.udp_recvfrom(client, 100)
        assert reply == b"answer"
        assert reply_src == ("hostB", 53)

    def test_sendto_autobinds_ephemeral_port(self):
        sim = Simulator()
        _, a, b = make_stacks(sim)
        server = b.udp_socket()
        b.udp_bind(server, 53)
        client = a.udp_socket()
        assert client.port is None
        a.udp_sendto(client, b"x", ("hostB", 53))
        assert client.port is not None

    def test_unroutable_datagram_silently_dropped(self):
        sim = Simulator()
        _, a, b = make_stacks(sim)
        client = a.udp_socket()
        a.udp_sendto(client, b"void", ("hostB", 9))
        sim.run()
        assert b.udp.unroutable == 1

    def test_oversized_datagram_rejected(self):
        sim = Simulator()
        _, a, _ = make_stacks(sim)
        client = a.udp_socket()
        with pytest.raises(MessageTooLargeError):
            a.udp_sendto(client, b"x" * (MAX_DATAGRAM + 1), ("hostB", 1))

    def test_port_conflict(self):
        sim = Simulator()
        _, a, _ = make_stacks(sim)
        s1, s2 = a.udp_socket(), a.udp_socket()
        a.udp_bind(s1, 53)
        with pytest.raises(AddressInUseError):
            a.udp_bind(s2, 53)

    def test_full_buffer_drops_not_blocks(self):
        sim = Simulator()
        _, a, b = make_stacks(sim)
        server = b.udp_socket()
        b.udp_bind(server, 53)
        server.rx_capacity = 1000
        client = a.udp_socket()
        for _ in range(5):
            a.udp_sendto(client, b"d" * 400, ("hostB", 53))
        sim.run()
        assert server.datagrams_received == 2
        assert server.datagrams_dropped == 3

    def test_datagram_boundaries_preserved(self):
        sim = Simulator()
        _, a, b = make_stacks(sim)
        server = b.udp_socket()
        b.udp_bind(server, 53)
        client = a.udp_socket()
        for payload in (b"one", b"twotwo", b"three33"):
            a.udp_sendto(client, payload, ("hostB", 53))
        sim.run()
        got = [b.udp_recvfrom(server, 100)[0] for _ in range(3)]
        assert got == [b"one", b"twotwo", b"three33"]

    def test_cpu_cycles_charged(self):
        sim = Simulator()
        _, a, b = make_stacks(sim)
        server = b.udp_socket()
        b.udp_bind(server, 53)
        client = a.udp_socket()
        a.udp_sendto(client, b"x" * 1000, ("hostB", 53))
        sim.run()
        assert a.cores[0].busy_by_component["kernel.udp_tx"] > 0
        assert b.cores[0].busy_by_component["kernel.udp_rx"] > 0


def udp_echo_pair(env):
    """Run a UDP echo server + client; returns the reply seen."""
    sim, server_vm, client_vm, api_s, api_c, server_addr = env
    result = {}

    def server():
        sock = yield from api_s.socket(sock_type="dgram")
        yield from api_s.bind(sock, 5353)
        data, src = yield from api_s.recvfrom(sock, 2048)
        yield from api_s.sendto(sock, b"echo:" + data, src)

    def client():
        yield sim.timeout(0.001)
        sock = yield from api_c.socket(sock_type="dgram")
        yield from api_c.sendto(sock, b"hello-dgram", server_addr)
        reply, src = yield from api_c.recvfrom(sock, 2048)
        result["reply"] = reply
        result["src"] = src
        yield from api_c.close(sock)

    server_vm.spawn(server())
    client_vm.spawn(client())
    sim.run(until=5.0)
    return result


class TestNetKernelUdp:
    @pytest.fixture
    def env(self):
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                          default_delay_sec=usec(25)))
        nsm_s = host.add_nsm("nsmS", vcpus=1, stack="kernel")
        nsm_c = host.add_nsm("nsmC", vcpus=1, stack="kernel")
        server_vm = host.add_vm("srv", vcpus=1, nsm=nsm_s)
        client_vm = host.add_vm("cli", vcpus=1, nsm=nsm_c)
        return (sim, server_vm, client_vm, host.socket_api(server_vm),
                host.socket_api(client_vm), ("nsmS", 5353)), host

    def test_datagram_echo_through_nqe_path(self, env):
        env_tuple, _host = env
        result = udp_echo_pair(env_tuple)
        assert result["reply"] == b"echo:hello-dgram"
        assert result["src"][0] == "nsmS"

    def test_no_hugepage_leaks(self, env):
        env_tuple, host = env
        udp_echo_pair(env_tuple)
        for vm in host.vms.values():
            region = host.coreengine.vm_device(vm.vm_id).hugepages
            assert region.live_buffers == 0

    def test_dgram_socket_on_shm_nsm_rejected(self):
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim))
        nsm = host.add_nsm("shm0", vcpus=1, stack="shm")
        vm = host.add_vm("vm1", vcpus=1, nsm=nsm)
        api = host.socket_api(vm)
        outcome = {}

        def app():
            try:
                yield from api.socket(sock_type="dgram")
            except SocketError as error:
                outcome["errno"] = error.errno_name

        vm.spawn(app())
        sim.run(until=1.0)
        assert outcome["errno"] == "EINVAL"

    def test_large_datagram_stream(self, env):
        """Many datagrams, integrity and boundaries preserved."""
        (sim, server_vm, client_vm, api_s, api_c, addr), _host = env
        received = []

        def server():
            sock = yield from api_s.socket(sock_type="dgram")
            yield from api_s.bind(sock, 5353)
            for _ in range(20):
                data, _src = yield from api_s.recvfrom(sock, 1 << 16)
                received.append(data)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_c.socket(sock_type="dgram")
            for index in range(20):
                payload = bytes([index]) * (100 + index * 37)
                yield from api_c.sendto(sock, payload, addr)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=5.0)
        assert len(received) == 20
        for index, data in enumerate(received):
            assert data == bytes([index]) * (100 + index * 37)


class TestBaselineUdp:
    def test_datagram_echo(self):
        sim = Simulator()
        host = BaselineHost(sim, Network(sim, default_rate_bps=gbps(10),
                                         default_delay_sec=usec(25)))
        server_vm = host.add_vm("server", vcpus=1)
        client_vm = host.add_vm("client", vcpus=1)
        env = (sim, server_vm, client_vm, host.socket_api(server_vm),
               host.socket_api(client_vm), ("server", 5353))
        result = udp_echo_pair(env)
        assert result["reply"] == b"echo:hello-dgram"
        assert result["src"] == ("server", 5353)
