"""Tests for the discrete-event engine: events, processes, run loop."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator
from repro.sim.event import PENDING, Event
from repro.sim.process import Interrupt


@pytest.fixture
def sim():
    return Simulator()


class TestEvents:
    def test_fresh_event_is_pending(self, sim):
        event = sim.event()
        assert event.pending
        assert not event.triggered

    def test_succeed_carries_value(self, sim):
        event = sim.event()
        event.succeed(42)
        sim.run()
        assert event.processed
        assert event.value == 42

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_propagates_exception(self, sim):
        event = sim.event()
        waiters = []
        event.callbacks.append(waiters.append)  # someone is listening
        event.fail(ValueError("boom"))
        sim.run()
        with pytest.raises(ValueError):
            _ = event.value

    def test_unconsumed_failure_raises_at_step(self, sim):
        """A failed event nobody waits on crashes the run loudly."""
        event = sim.event()
        event.fail(ValueError("unheard"))
        with pytest.raises(ValueError, match="unheard"):
            sim.run()

    def test_fail_requires_exception_instance(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            _ = event.value

    def test_callbacks_run_once(self, sim):
        event = sim.event()
        calls = []
        event.callbacks.append(lambda e: calls.append(1))
        event.succeed()
        sim.run()
        assert calls == [1]


class TestTimeouts:
    def test_timeout_advances_clock(self, sim):
        sim.timeout(1.5)
        sim.run()
        assert sim.now == pytest.approx(1.5)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_timeouts_fire_in_order(self, sim):
        order = []
        sim.call_later(2.0, lambda: order.append("b"))
        sim.call_later(1.0, lambda: order.append("a"))
        sim.call_later(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self, sim):
        order = []
        sim.call_later(1.0, lambda: order.append("first"))
        sim.call_later(1.0, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]

    def test_call_at_in_past_rejected(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.timeout(1.0)
        sim.run(until=10.0)
        assert sim.now == pytest.approx(10.0)

    def test_run_until_leaves_future_events(self, sim):
        fired = []
        sim.call_later(5.0, lambda: fired.append(1))
        sim.run(until=2.0)
        assert not fired
        sim.run()
        assert fired == [1]


class TestProcesses:
    def test_process_returns_value(self, sim):
        def proc():
            yield sim.timeout(1.0)
            return "done"

        process = sim.process(proc())
        value = sim.run_until_event(process)
        assert value == "done"
        assert sim.now == pytest.approx(1.0)

    def test_process_waits_on_event(self, sim):
        event = sim.event()
        results = []

        def waiter():
            value = yield event
            results.append(value)

        sim.process(waiter())
        sim.call_later(2.0, lambda: event.succeed("payload"))
        sim.run()
        assert results == ["payload"]

    def test_process_chains_on_other_process(self, sim):
        def inner():
            yield sim.timeout(1.0)
            return 10

        def outer():
            value = yield sim.process(inner())
            return value + 1

        process = sim.process(outer())
        assert sim.run_until_event(process) == 11

    def test_exception_in_event_reraised_in_process(self, sim):
        event = sim.event()
        caught = []

        def waiter():
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        sim.call_later(1.0, lambda: event.fail(RuntimeError("bad")))
        sim.run()
        assert caught == ["bad"]

    def test_process_failure_propagates_to_waiter(self, sim):
        def failing():
            yield sim.timeout(0.1)
            raise KeyError("inner")

        process = sim.process(failing())
        with pytest.raises(KeyError):
            sim.run_until_event(process)

    def test_yield_non_event_fails_process(self, sim):
        def bad():
            yield 42

        process = sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run_until_event(process)

    def test_interrupt_raises_inside_process(self, sim):
        log = []

        def sleeper():
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                log.append((interrupt.cause, sim.now))

        process = sim.process(sleeper())
        sim.call_later(1.0, lambda: process.interrupt("wake"))
        sim.run()
        assert log == [("wake", 1.0)]

    def test_waiting_on_already_processed_event(self, sim):
        event = sim.event()
        event.succeed("early")
        sim.run()

        def late_waiter():
            value = yield event
            return value

        process = sim.process(late_waiter())
        assert sim.run_until_event(process) == "early"

    def test_deadlock_detected(self, sim):
        event = sim.event()  # never triggered

        def stuck():
            yield event

        process = sim.process(stuck())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run_until_event(process)


class TestConditions:
    def test_any_of_fires_on_first(self, sim):
        e1, e2 = sim.event(), sim.event()
        condition = sim.any_of([e1, e2])
        sim.call_later(1.0, lambda: e1.succeed("one"))
        sim.call_later(5.0, lambda: e2.succeed("two"))
        sim.run_until_event(condition, limit=2.0)
        assert sim.now == pytest.approx(1.0)

    def test_all_of_waits_for_every_event(self, sim):
        e1, e2 = sim.event(), sim.event()
        condition = sim.all_of([e1, e2])
        sim.call_later(1.0, lambda: e1.succeed())
        sim.call_later(3.0, lambda: e2.succeed())
        sim.run_until_event(condition)
        assert sim.now == pytest.approx(3.0)

    def test_empty_condition_fires_immediately(self, sim):
        condition = sim.all_of([])
        sim.run()
        assert condition.processed

    def test_any_of_with_pre_triggered_event(self, sim):
        e1 = sim.event()
        e1.succeed("x")
        condition = sim.any_of([e1, sim.event()])
        sim.run()
        assert condition.triggered


class TestConditionTimeoutRegression:
    """AnyOf/AllOf with Timeout members: a timeout is armed at creation
    but must only satisfy a condition at its due time (the epoll_wait
    spin found during development)."""

    def test_any_of_with_timeout_waits_for_due_time(self, sim):
        event = sim.event()
        condition = sim.any_of([event, sim.timeout(2.0)])
        sim.run()
        assert condition.processed
        assert sim.now == pytest.approx(2.0)

    def test_any_of_event_beats_timeout(self, sim):
        event = sim.event()
        condition = sim.any_of([event, sim.timeout(5.0)])
        sim.call_later(1.0, lambda: event.succeed("won"))
        sim.run_until_event(condition)
        assert sim.now == pytest.approx(1.0)

    def test_all_of_with_timeout(self, sim):
        event = sim.event()
        condition = sim.all_of([event, sim.timeout(1.0)])
        sim.call_later(3.0, lambda: event.succeed())
        sim.run_until_event(condition)
        assert sim.now == pytest.approx(3.0)

    def test_process_waiting_on_any_of_timeout(self, sim):
        log = []

        def waiter():
            yield sim.any_of([sim.event(), sim.timeout(0.5)])
            log.append(sim.now)

        sim.process(waiter())
        sim.run()
        assert log == [pytest.approx(0.5)]
