"""Tests for cores, the cost model, and CPU accounting."""

import pytest

from repro.cpu.accounting import CpuAccountant
from repro.cpu.core import Core
from repro.cpu.cost_model import CostModel, DEFAULT_COST_MODEL
from repro.errors import ResourceError
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestCore:
    def test_execute_takes_cycles_over_hz_seconds(self, sim):
        core = Core(sim, hz=1e9)
        event = core.execute(5e8)
        sim.run_until_event(event)
        assert sim.now == pytest.approx(0.5)

    def test_work_serializes_fifo(self, sim):
        core = Core(sim, hz=1e9)
        core.execute(1e9)
        second = core.execute(1e9)
        sim.run_until_event(second)
        assert sim.now == pytest.approx(2.0)

    def test_busy_ledger_by_component(self, sim):
        core = Core(sim, hz=1e9)
        core.charge(100, "a")
        core.charge(50, "a")
        core.charge(25, "b")
        assert core.busy_by_component["a"] == 150
        assert core.busy_by_component["b"] == 25
        assert core.busy_cycles == 175

    def test_negative_work_rejected(self, sim):
        core = Core(sim)
        with pytest.raises(ResourceError):
            core.execute(-1)
        with pytest.raises(ResourceError):
            core.charge(-1)

    def test_utilization(self, sim):
        core = Core(sim, hz=1e9)
        event = core.execute(5e8)
        sim.run_until_event(event)
        sim.timeout(0.5)
        sim.run()
        assert core.utilization() == pytest.approx(0.5)

    def test_idle_gap_not_counted_busy(self, sim):
        core = Core(sim, hz=1e9)
        sim.run_until_event(core.execute(1e8))
        sim.timeout(1.0)
        sim.run()
        event = core.execute(1e8)
        sim.run_until_event(event)
        # Work resumes at now, not at the old completion time.
        assert sim.now == pytest.approx(1.2)


class TestCostModel:
    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.ce_switch_fixed = 1.0

    def test_with_overrides(self):
        model = DEFAULT_COST_MODEL.with_overrides(ce_switch_fixed=999.0)
        assert model.ce_switch_fixed == 999.0
        assert DEFAULT_COST_MODEL.ce_switch_fixed != 999.0

    def test_fig11_unbatched_calibration(self):
        # 2.3 GHz / ~287 cycles ~= 8.0M NQEs/s (the paper's number).
        rate = DEFAULT_COST_MODEL.ce_nqe_rate(batch=1)
        assert rate == pytest.approx(8.0e6, rel=0.05)

    def test_fig11_saturation(self):
        rate = DEFAULT_COST_MODEL.ce_nqe_rate(batch=256)
        assert rate == pytest.approx(198.5e6, rel=0.05)

    def test_batching_is_monotone(self):
        rates = [DEFAULT_COST_MODEL.ce_nqe_rate(b)
                 for b in (1, 2, 4, 8, 16, 32, 64, 128, 256)]
        assert rates == sorted(rates)

    def test_fig12_copy_calibration(self):
        model = DEFAULT_COST_MODEL
        # 64B messages ~4.9 Gbps; 8KB ~144 Gbps on one core.
        rate64 = model.core_hz / model.hugepage_copy_cycles(64) * 64 * 8
        rate8k = model.core_hz / model.hugepage_copy_cycles(8192) * 8192 * 8
        assert rate64 == pytest.approx(4.9e9, rel=0.1)
        assert rate8k == pytest.approx(144.2e9, rel=0.1)

    def test_amdahl_speedup_bounds(self):
        assert CostModel.amdahl_speedup(1, 0.5) == 1.0
        assert CostModel.amdahl_speedup(8, 0.0) == 8.0
        assert CostModel.amdahl_speedup(8, 0.1) < 8.0

    def test_amdahl_invalid_cores(self):
        with pytest.raises(ValueError):
            CostModel.amdahl_speedup(0, 0.1)

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_COST_MODEL.ce_batch_cycles(0)

    def test_membw_contention_grows_with_load(self):
        model = DEFAULT_COST_MODEL
        low = model.nsm_copy_cycles(8192, aggregate_gbps=10)
        high = model.nsm_copy_cycles(8192, aggregate_gbps=100)
        assert high > low


class TestAccounting:
    def test_group_totals(self, sim):
        vm_core, nsm_core = Core(sim), Core(sim)
        accountant = CpuAccountant()
        accountant.register("vm", [vm_core])
        accountant.register("nsm", [nsm_core])
        vm_core.charge(100)
        nsm_core.charge(300)
        assert accountant.cycles("vm") == 100
        assert accountant.total_cycles(["vm", "nsm"]) == 400

    def test_normalized_usage(self, sim):
        vm_core, nsm_core = Core(sim), Core(sim)
        accountant = CpuAccountant()
        accountant.register("vm", [vm_core])
        accountant.register("nsm", [nsm_core])
        vm_core.charge(100)
        nsm_core.charge(50)
        ratio = accountant.normalized_usage(["vm", "nsm"], ["vm"])
        assert ratio == pytest.approx(1.5)

    def test_by_component_merges_cores(self, sim):
        cores = [Core(sim), Core(sim)]
        accountant = CpuAccountant()
        accountant.register("vm", cores)
        cores[0].charge(10, "x")
        cores[1].charge(20, "x")
        assert accountant.by_component("vm")["x"] == 30
