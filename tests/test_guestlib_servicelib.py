"""Focused tests for GuestLib/ServiceLib mechanics: send-buffer
accounting, receive credit, accepted-socket placement, stale events."""

import pytest

from repro.core.guestlib import DEFAULT_SNDBUF, RECV_CREDIT_QUANTUM
from repro.core.host import NetKernelHost
from repro.core.nqe import NqeOp
from repro.errors import NotConnectedError, SocketError
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, mbps, usec


@pytest.fixture
def env():
    sim = Simulator()
    host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                      default_delay_sec=usec(25)))
    nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
    return sim, host, nsm


def start_sink_server(sim, host, nsm, port=80, drain=True):
    vm = host.add_vm("sinkvm", vcpus=1, nsm=nsm)
    api = host.socket_api(vm)
    state = {"conns": [], "bytes": 0}

    def server():
        listener = yield from api.socket()
        yield from api.bind(listener, port)
        yield from api.listen(listener, 64)
        while True:
            conn = yield from api.accept(listener)
            state["conns"].append(conn)
            if drain:
                vm.spawn(drainer(conn))

    def drainer(conn):
        while True:
            data = yield from api.recv(conn, 1 << 20)
            if not data:
                break
            state["bytes"] += len(data)

    vm.spawn(server())
    return vm, api, state


class TestSendAccounting:
    def test_tx_inflight_tracks_and_drains(self, env):
        sim, host, nsm = env
        start_sink_server(sim, host, nsm)
        vm = host.add_vm("cli", vcpus=1, nsm=nsm)
        api = host.socket_api(vm)
        snapshot = {}

        def client():
            yield sim.timeout(0.001)
            sock = yield from api.socket()
            yield from api.connect(sock, ("nsm0", 80))
            yield from api.send(sock, b"x" * 10_000)
            snapshot["inflight_after_send"] = sock.tx_inflight
            # Wait for all SEND_RESULT credits.
            while sock.tx_inflight > 0:
                yield sim.timeout(0.001)
            snapshot["drained"] = True
            yield from api.close(sock)

        vm.spawn(client())
        sim.run(until=5.0)
        assert snapshot["inflight_after_send"] > 0  # pipelined
        assert snapshot.get("drained")

    def test_send_blocks_at_buffer_cap_until_credit(self, env):
        sim, host, nsm = env
        start_sink_server(sim, host, nsm)
        vm = host.add_vm("cli", vcpus=1, nsm=nsm)
        api = host.socket_api(vm)
        done = {}

        def client():
            yield sim.timeout(0.001)
            sock = yield from api.socket()
            yield from api.connect(sock, ("nsm0", 80))
            # Far beyond the send-buffer cap: must still complete via
            # SEND_RESULT credit, never exceeding the cap in flight.
            total = DEFAULT_SNDBUF * 4
            yield from api.send(sock, b"y" * total)
            done["sent"] = total
            yield from api.close(sock)

        def watcher():
            sock_max = 0
            while "sent" not in done:
                for sock in vm.guestlib.fd_table.values():
                    sock_max = max(sock_max, sock.tx_inflight)
                yield sim.timeout(0.0005)
            done["max_inflight"] = sock_max

        vm.spawn(client())
        vm.spawn(watcher())
        sim.run(until=20.0)
        assert done["sent"] == DEFAULT_SNDBUF * 4
        assert done["max_inflight"] <= DEFAULT_SNDBUF

    def test_send_on_unconnected_socket_rejected(self, env):
        sim, host, nsm = env
        vm = host.add_vm("cli", vcpus=1, nsm=nsm)
        api = host.socket_api(vm)
        outcome = {}

        def client():
            sock = yield from api.socket()
            try:
                yield from api.send(sock, b"nope")
            except NotConnectedError:
                outcome["raised"] = True

        vm.spawn(client())
        sim.run(until=1.0)
        assert outcome.get("raised")


class TestReceiveCredit:
    def test_credit_nqes_flow_back(self, env):
        """Consuming >= one quantum triggers RECV_CREDIT toward the NSM."""
        sim, host, nsm = env
        server_vm, server_api, state = start_sink_server(sim, host, nsm)
        vm = host.add_vm("cli", vcpus=1, nsm=nsm)
        api = host.socket_api(vm)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api.socket()
            yield from api.connect(sock, ("nsm0", 80))
            yield from api.send(sock, b"z" * (3 * RECV_CREDIT_QUANTUM))
            yield from api.close(sock)

        vm.spawn(client())
        sim.run(until=10.0)
        assert state["bytes"] == 3 * RECV_CREDIT_QUANTUM
        # The server-side VM must have produced credit NQEs.
        served = [c for c in server_vm.guestlib.fd_table.values()]
        assert state["bytes"] >= RECV_CREDIT_QUANTUM

    def test_unread_data_stalls_sender_via_window(self, env):
        """If the app never recv()s, ServiceLib's receive window fills
        and TCP flow control pushes back on the sender."""
        sim, host, nsm = env
        start_sink_server(sim, host, nsm, drain=False)
        vm = host.add_vm("cli", vcpus=1, nsm=nsm)
        api = host.socket_api(vm)
        progress = {}

        def client():
            yield sim.timeout(0.001)
            sock = yield from api.socket()
            yield from api.connect(sock, ("nsm0", 80))
            deadline = sim.now + 2.0
            payload = b"w" * 65536
            progress["sent"] = 0
            while sim.now < deadline and progress["sent"] < 64 * 1024 * 1024:
                # send() eventually blocks for good once every buffer in
                # the chain (GuestLib cap -> stack send buf -> peer stack
                # recv buf -> ServiceLib window) is full.
                yield from api.send(sock, payload)
                progress["sent"] += len(payload)

        vm.spawn(client())
        sim.run(until=3.0)
        # Bounded by NSM recv window + stack buffers + hugepage budget,
        # far below what 2 seconds at 10G could carry (~2.5 GB).
        assert progress["sent"] < 32 * 1024 * 1024


class TestAcceptPlacement:
    def test_accepted_sockets_round_robin_queue_sets(self, env):
        sim, host, nsm = env
        server_vm = host.add_vm("srv", vcpus=2, nsm=nsm)
        api_s = host.socket_api(server_vm)
        accepted = []

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener, 64)
            for _ in range(4):
                conn = yield from api_s.accept(listener)
                accepted.append(conn)

        server_vm.spawn(server())

        for index in range(4):
            vm = host.add_vm(f"c{index}", vcpus=1, nsm=nsm)
            api = host.socket_api(vm)

            def client(api=api):
                yield sim.timeout(0.001)
                sock = yield from api.socket()
                yield from api.connect(sock, ("nsm0", 80))

            vm.spawn(client())
        sim.run(until=5.0)
        assert len(accepted) == 4
        qsets = {sock.home_qset for sock in accepted}
        assert qsets == {0, 1}  # spread over both vCPU lanes


class TestStaleEvents:
    def test_data_for_closed_socket_freed(self, env):
        """DATA_ARRIVED racing a close must free its hugepage buffer."""
        sim, host, nsm = env
        server_vm, _, state = start_sink_server(sim, host, nsm)
        vm = host.add_vm("cli", vcpus=1, nsm=nsm)
        api = host.socket_api(vm)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api.socket()
            yield from api.connect(sock, ("nsm0", 80))
            yield from api.send(sock, b"k" * 100_000)
            yield from api.close(sock)

        vm.spawn(client())
        sim.run(until=10.0)
        for name in ("cli", "sinkvm"):
            region = host.coreengine.vm_device(
                host.vms[name].vm_id).hugepages
            assert region.live_buffers == 0
