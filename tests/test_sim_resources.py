"""Tests for Resource and Store."""

import pytest

from repro.errors import ResourceError
from repro.sim import Simulator
from repro.sim.resources import Resource, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_acquire_within_capacity_is_immediate(self, sim):
        resource = Resource(sim, capacity=2)
        e1 = resource.acquire()
        e2 = resource.acquire()
        assert e1.triggered and e2.triggered
        assert resource.available == 0

    def test_acquire_beyond_capacity_waits(self, sim):
        resource = Resource(sim, capacity=1)
        resource.acquire()
        waiter = resource.acquire()
        assert not waiter.triggered
        resource.release()
        assert waiter.triggered

    def test_release_without_acquire_rejected(self, sim):
        resource = Resource(sim)
        with pytest.raises(ResourceError):
            resource.release()

    def test_fifo_handoff(self, sim):
        resource = Resource(sim, capacity=1)
        resource.acquire()
        first = resource.acquire()
        second = resource.acquire()
        resource.release()
        assert first.triggered and not second.triggered

    def test_invalid_capacity(self, sim):
        with pytest.raises(ResourceError):
            Resource(sim, capacity=0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("a")
        event = store.get()
        assert event.triggered
        assert event._value == "a"

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        getter = store.get()
        assert not getter.triggered
        store.put("item")
        assert getter.triggered

    def test_fifo_ordering(self, sim):
        store = Store(sim)
        for item in ("a", "b", "c"):
            store.put(item)
        values = [store.get()._value for _ in range(3)]
        assert values == ["a", "b", "c"]

    def test_bounded_put_blocks_when_full(self, sim):
        store = Store(sim, capacity=1)
        store.put("x")
        putter = store.put("y")
        assert not putter.triggered
        store.get()
        assert putter.triggered
        assert store.items[0] == "y"

    def test_try_get_empty_returns_none(self, sim):
        store = Store(sim)
        assert store.try_get() is None

    def test_direct_handoff_to_waiting_getter(self, sim):
        store = Store(sim)
        getter = store.get()
        store.put("direct")
        assert getter._value == "direct"
        assert len(store) == 0
