"""End-to-end tests for the functional TCP engine."""

import pytest

from repro.errors import (
    AddressInUseError,
    InvalidSocketStateError,
    NotConnectedError,
)
from repro.net.fabric import Network
from repro.net.link import Link
from repro.sim import Simulator
from repro.stack.cc.reno import RenoCC
from repro.stack.tcp.engine import TcpEngine
from repro.stack.tcp.tcb import TcpState
from repro.units import gbps, mbps, usec


def make_pair(sim, rate=gbps(1), delay=usec(50), loss=0.0, **kwargs):
    network = Network(sim, default_rate_bps=rate, default_delay_sec=delay)
    if loss:
        network.set_bottleneck(Link(sim, rate, delay_sec=delay,
                                    loss_rate=loss, seed=11))
    a = TcpEngine(sim, network, "A", **kwargs)
    b = TcpEngine(sim, network, "B", **kwargs)
    return network, a, b


def echo_server(engine, port, received, close_after_eof=True):
    """Install a drain-everything server; bytes land in ``received``."""
    listener = engine.socket()
    engine.bind(listener, port)
    engine.listen(listener, backlog=64)

    def on_accept(lst):
        while True:
            child = engine.accept(lst)
            if child is None:
                return

            def on_readable(conn):
                while True:
                    data = engine.recv(conn, 1 << 20)
                    if not data:
                        break
                    received.extend(data)
                if conn.eof and close_after_eof:
                    engine.close(conn)

            child.on_readable = on_readable

    listener.on_accept_ready = on_accept
    return listener


def bulk_send(engine, conn, payload):
    """Send ``payload`` entirely, then close (callback-driven)."""
    progress = {"sent": 0}

    def push(c):
        while progress["sent"] < len(payload):
            took = engine.send(c, payload[progress["sent"]:
                                          progress["sent"] + 65536])
            if took == 0:
                return
            progress["sent"] += took
        engine.close(c)

    conn.on_connected = push
    conn.on_writable = push
    return progress


class TestHandshake:
    def test_three_way_handshake(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        echo_server(b, 80, bytearray())
        conn = a.socket()
        connected = []
        conn.on_connected = lambda c: connected.append(sim.now)
        a.connect(conn, ("B", 80))
        sim.run(until=1.0)
        assert connected and conn.established
        # One round trip: 2 x (serialization + 2 hops of 50us).
        assert connected[0] < 0.001

    def test_connect_refused_when_no_listener(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        conn = a.socket()
        errors = []
        conn.on_error = lambda c, errno: errors.append(errno)
        a.connect(conn, ("B", 81))
        sim.run(until=1.0)
        assert errors == ["ECONNREFUSED"]
        assert conn.state == TcpState.CLOSED

    def test_backlog_overflow_drops_syn(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        listener = b.socket()
        b.bind(listener, 80)
        b.listen(listener, backlog=2)
        # Nobody accepts: the third SYN must be dropped (and retried).
        conns = [a.socket() for _ in range(3)]
        for conn in conns:
            a.connect(conn, ("B", 80))
        sim.run(until=0.1)
        assert len(listener.accept_queue) == 2
        established = sum(1 for c in conns if c.established)
        assert established == 2
        # The refused client eventually retries via RTO.
        assert conns[2].state == TcpState.SYN_SENT

    def test_bind_conflicts(self):
        sim = Simulator()
        _, a, _ = make_pair(sim)
        l1 = a.socket()
        a.bind(l1, 80)
        a.listen(l1)
        l2 = a.socket()
        with pytest.raises(AddressInUseError):
            a.bind(l2, 80)

    def test_listen_without_bind_rejected(self):
        sim = Simulator()
        _, a, _ = make_pair(sim)
        sock = a.socket()
        with pytest.raises(InvalidSocketStateError):
            a.listen(sock)

    def test_send_before_connect_rejected(self):
        sim = Simulator()
        _, a, _ = make_pair(sim)
        sock = a.socket()
        with pytest.raises(NotConnectedError):
            a.send(sock, b"x")


class TestDataTransfer:
    def test_bulk_transfer_integrity(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        received = bytearray()
        echo_server(b, 80, received)
        payload = bytes(i % 251 for i in range(300_000))
        conn = a.socket()
        bulk_send(a, conn, payload)
        a.connect(conn, ("B", 80))
        sim.run(until=5.0)
        assert bytes(received) == payload
        assert conn.state == TcpState.CLOSED
        assert a.active_connections == 0

    def test_mss_segmentation(self):
        sim = Simulator()
        _, a, b = make_pair(sim, mss=1000)
        received = bytearray()
        echo_server(b, 80, received)
        conn = a.socket()
        bulk_send(a, conn, b"z" * 5000)
        a.connect(conn, ("B", 80))
        sim.run(until=1.0)
        assert len(received) == 5000

    def test_bidirectional_transfer(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        listener = b.socket()
        b.bind(listener, 80)
        b.listen(listener)
        got_at_b = bytearray()
        got_at_a = bytearray()

        def on_accept(lst):
            child = b.accept(lst)

            def reader(conn):
                while True:
                    data = b.recv(conn, 65536)
                    if not data:
                        break
                    got_at_b.extend(data)
                    b.send(conn, data.upper())

            child.on_readable = reader

        listener.on_accept_ready = on_accept
        conn = a.socket()

        def client_read(c):
            while True:
                data = a.recv(c, 65536)
                if not data:
                    break
                got_at_a.extend(data)

        conn.on_readable = client_read
        conn.on_connected = lambda c: a.send(c, b"hello tcp")
        a.connect(conn, ("B", 80))
        sim.run(until=1.0)
        assert bytes(got_at_b) == b"hello tcp"
        assert bytes(got_at_a) == b"HELLO TCP"

    def test_flow_control_zero_window(self):
        sim = Simulator()
        _, a, b = make_pair(sim, recv_buf_bytes=8192)
        listener = b.socket()
        b.bind(listener, 80)
        b.listen(listener)
        children = []
        listener.on_accept_ready = lambda lst: children.append(b.accept(lst))
        conn = a.socket()
        bulk_send(a, conn, b"q" * 100_000)
        a.connect(conn, ("B", 80))
        sim.run(until=0.3)
        # Receiver never reads: sender must stall at the 8KB window.
        assert children
        child = children[0]
        assert child.recv_buf.window == 0
        assert conn.inflight <= 8192 + a.mss
        # Now drain; transfer must resume and complete.
        drained = bytearray()

        def on_readable(c):
            while True:
                data = b.recv(c, 1 << 20)
                if not data:
                    break
                drained.extend(data)

        child.on_readable = on_readable
        on_readable(child)
        sim.run(until=10.0)
        assert len(drained) == 100_000

    def test_rtt_estimation(self):
        sim = Simulator()
        _, a, b = make_pair(sim, delay=usec(500))
        received = bytearray()
        echo_server(b, 80, received)
        conn = a.socket()
        bulk_send(a, conn, b"m" * 50_000)
        a.connect(conn, ("B", 80))
        sim.run(until=1.0)
        assert conn.srtt is not None
        # RTT >= 2 propagation delays (plus serialization).
        assert conn.srtt >= 2 * 500e-6


class TestLossRecovery:
    def test_transfer_survives_random_loss(self):
        sim = Simulator()
        _, a, b = make_pair(sim, rate=mbps(50), loss=0.02)
        received = bytearray()
        echo_server(b, 80, received)
        payload = bytes(i % 256 for i in range(120_000))
        conn = a.socket()
        bulk_send(a, conn, payload)
        a.connect(conn, ("B", 80))
        sim.run(until=30.0)
        assert bytes(received) == payload
        assert conn.retransmissions > 0

    def test_fast_retransmit_on_dupacks(self):
        sim = Simulator()
        network, a, b = make_pair(sim, rate=mbps(100))
        received = bytearray()
        echo_server(b, 80, received)
        payload = b"f" * 200_000
        conn = a.socket()
        bulk_send(a, conn, payload)
        a.connect(conn, ("B", 80))
        # Drop exactly one data packet mid-flight by monkeypatching once.
        original_send = network.send
        state = {"dropped": False}

        def lossy_send(packet):
            segment = packet.segment
            if (not state["dropped"] and segment.payload
                    and segment.seq > 50_000):
                state["dropped"] = True
                return False
            return original_send(packet)

        a.network = type("N", (), {"send": staticmethod(lossy_send),
                                   "add_endpoint": network.add_endpoint})()
        sim.run(until=10.0)
        assert bytes(received) == payload
        assert state["dropped"]
        assert conn.retransmissions >= 1

    def test_rto_gives_up_eventually(self):
        sim = Simulator()
        network, a, b = make_pair(sim)
        received = bytearray()
        echo_server(b, 80, received)
        conn = a.socket()
        errors = []
        conn.on_error = lambda c, errno: errors.append(errno)
        conn.on_connected = lambda c: a.send(c, b"x" * 1000)
        a.connect(conn, ("B", 80))
        sim.run(until=0.05)
        assert conn.established
        # Sever the path entirely.
        network.remove_endpoint("B")
        network.add_endpoint("B", lambda p: None)
        a.send(conn, b"more data")
        sim.run(until=600.0)
        assert errors == ["ETIMEDOUT"]
        assert conn.state == TcpState.CLOSED


class TestTeardown:
    def test_graceful_close_both_sides(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        received = bytearray()
        echo_server(b, 80, received)
        conn = a.socket()
        bulk_send(a, conn, b"bye" * 100)
        a.connect(conn, ("B", 80))
        sim.run(until=5.0)
        assert a.active_connections == 0
        assert b.active_connections == 0

    def test_abort_sends_rst(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        received = bytearray()
        echo_server(b, 80, received, close_after_eof=False)
        conn = a.socket()
        errors = []

        def on_accept_watch(lst):
            child = b.accept(lst)
            if child is not None:
                child.on_error = lambda c, errno: errors.append(errno)

        conn.on_connected = lambda c: a.abort(c)
        # Rewire accept to capture the child's error.
        listener = b._listeners[80]
        listener.on_accept_ready = on_accept_watch
        a.connect(conn, ("B", 80))
        sim.run(until=1.0)
        assert conn.state == TcpState.CLOSED
        assert errors == ["ECONNRESET"]

    def test_eof_visible_to_receiver(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        listener = b.socket()
        b.bind(listener, 80)
        b.listen(listener)
        eof_seen = []
        children = []

        def on_accept(lst):
            child = b.accept(lst)
            children.append(child)

            def on_readable(conn):
                data = b.recv(conn, 65536)
                if not data and conn.eof:
                    eof_seen.append(True)

            child.on_readable = on_readable

        listener.on_accept_ready = on_accept
        conn = a.socket()
        conn.on_connected = lambda c: a.close(c)
        a.connect(conn, ("B", 80))
        sim.run(until=1.0)
        assert eof_seen

    def test_close_flushes_pending_data_before_fin(self):
        sim = Simulator()
        _, a, b = make_pair(sim, rate=mbps(10))
        received = bytearray()
        echo_server(b, 80, received)
        conn = a.socket()

        def send_and_close(c):
            a.send(c, b"p" * 50_000)
            a.close(c)  # immediately; data must still arrive

        conn.on_connected = send_and_close
        a.connect(conn, ("B", 80))
        sim.run(until=5.0)
        assert len(received) == 50_000


class TestEcn:
    def test_dctcp_receives_ecn_echo(self):
        from repro.stack.cc.dctcp import DctcpCC

        sim = Simulator()
        network = Network(sim, default_rate_bps=mbps(50),
                          default_delay_sec=usec(50))
        network.set_bottleneck(Link(sim, mbps(20), delay_sec=usec(50),
                                    queue_bytes=64 * 1024,
                                    ecn_threshold_bytes=8 * 1024))
        a = TcpEngine(sim, network, "A", cc_factory=lambda m: DctcpCC(m))
        b = TcpEngine(sim, network, "B", cc_factory=lambda m: DctcpCC(m))
        received = bytearray()
        echo_server(b, 80, received)
        conn = a.socket()
        bulk_send(a, conn, b"e" * 400_000)
        a.connect(conn, ("B", 80))
        sim.run(until=5.0)
        assert len(received) == 400_000
        assert conn.cc.alpha > 0.0  # marks were echoed and integrated
        assert network.bottleneck.marked_packets > 0
