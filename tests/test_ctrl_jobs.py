"""Control-plane job lifecycle: validation, retries, crash-resume."""

import json

import pytest

from repro.ctrl.executor import execute_job
from repro.ctrl.jobs import DONE, FAILED, JobSpec, QUEUED, RUNNING
from repro.ctrl.store import RunStore, canonical_json
from repro.ctrl.worker import JobWorker
from repro.errors import JobValidationError, UnknownJobError


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(JobValidationError, match="unknown job kind"):
            JobSpec("frobnicate").validate()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(JobValidationError, match="fig99"):
            JobSpec("experiment", experiment="fig99").validate()

    def test_unknown_experiment_param_rejected_before_dispatch(self):
        spec = JobSpec("experiment", experiment="fig7",
                       params={"bogus": 1})
        with pytest.raises(JobValidationError) as excinfo:
            spec.validate()
        # The error names the offender and the declared interface.
        assert "bogus" in str(excinfo.value)
        assert "minutes" in str(excinfo.value)

    def test_unknown_scenario_param_rejected(self):
        with pytest.raises(JobValidationError, match="warp_factor"):
            JobSpec("chaos", params={"warp_factor": 9}).validate()

    def test_experiment_id_on_scenario_kind_rejected(self):
        with pytest.raises(JobValidationError, match="no experiment id"):
            JobSpec("chaos", experiment="fig7").validate()

    def test_zero_padded_experiment_id_accepted(self):
        JobSpec("experiment", experiment="fig08").validate()

    def test_seed_flows_into_seeded_kinds(self):
        spec = JobSpec("chaos", seed=42)
        assert spec.effective_params()["seed"] == 42
        pinned = JobSpec("chaos", params={"seed": 7}, seed=42)
        assert pinned.effective_params()["seed"] == 7

    def test_spec_round_trips_through_dict(self):
        spec = JobSpec("migrate", params={"streams": 4}, seed=3,
                       max_retries=1, backoff_base=0.01)
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone.to_dict() == spec.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(JobValidationError, match="surprise"):
            JobSpec.from_dict({"kind": "chaos", "surprise": True})


class TestRunStore:
    def test_ids_are_sequential_and_persistent(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        first = store.new_job(JobSpec("chaos"))
        second = store.new_job(JobSpec("chaos"))
        assert [first.job_id, second.job_id] == ["job-000001",
                                                 "job-000002"]
        # A fresh handle on the same directory continues the sequence.
        again = RunStore(tmp_path / "runs").new_job(JobSpec("chaos"))
        assert again.job_id == "job-000003"

    def test_job_record_round_trips(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        job = store.new_job(JobSpec("migrate", params={"streams": 2}))
        job.transition(RUNNING)
        job.attempts = 1
        store.save_job(job)
        loaded = store.load_job(job.job_id)
        assert loaded.state == RUNNING
        assert loaded.attempts == 1
        assert loaded.spec.params == {"streams": 2}
        assert loaded.history == [QUEUED, RUNNING]

    def test_unknown_job_raises(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        with pytest.raises(UnknownJobError):
            store.load_job("job-999999")
        with pytest.raises(UnknownJobError):
            store.load_result("job-999999")

    def test_result_bytes_are_canonical(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        payload = {"b": 2, "a": [1, {"z": 0, "y": 1}]}
        store.save_result("job-000001", payload)
        assert store.result_bytes("job-000001").decode() \
            == canonical_json(payload)
        # Same payload, different insertion order: identical bytes.
        store.save_result("job-000002",
                          {"a": [1, {"y": 1, "z": 0}], "b": 2})
        assert store.result_bytes("job-000001") \
            == store.result_bytes("job-000002")

    def test_bench_history_appends(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        store.record_bench("fig08_mux", {"wall_s": 1.0}, job_id="job-1")
        store.record_bench("fig08_mux", {"wall_s": 0.9}, job_id="job-2")
        history = store.bench_history("fig08_mux")
        assert [h["job_id"] for h in history] == ["job-1", "job-2"]


def _flaky_executor(failures_then_success):
    """An injectable executor failing the first N attempts."""
    calls = {"count": 0}

    def executor(spec, fleet_probe=None):
        calls["count"] += 1
        if calls["count"] <= failures_then_success:
            raise RuntimeError(f"transient #{calls['count']}")
        return {"kind": spec.kind, "ran_on_attempt": calls["count"]}

    executor.calls = calls
    return executor


class TestWorkerLifecycle:
    def test_retry_with_backoff_then_done(self, tmp_path):
        sleeps = []
        executor = _flaky_executor(2)
        worker = JobWorker(RunStore(tmp_path / "runs"),
                           executor=executor, sleep=sleeps.append)
        job = worker.run_to_completion(
            JobSpec("chaos", max_retries=3, backoff_base=0.01))
        assert job.state == DONE
        assert job.attempts == 3
        assert job.error is None
        # Exponential: base, 2*base (the third attempt succeeded).
        assert sleeps == pytest.approx([0.01, 0.02])
        assert worker.store.load_result(job.job_id)["ran_on_attempt"] == 3
        assert worker.counters["retries"] == 2

    def test_retries_exhausted_marks_failed(self, tmp_path):
        sleeps = []
        executor = _flaky_executor(99)
        worker = JobWorker(RunStore(tmp_path / "runs"),
                           executor=executor, sleep=sleeps.append)
        job = worker.run_to_completion(
            JobSpec("chaos", max_retries=1, backoff_base=0.01))
        assert job.state == FAILED
        assert job.attempts == 2  # first try + one retry
        assert "transient" in job.error
        assert not worker.store.has_result(job.job_id)
        assert worker.counters["failed"] == 1

    def test_deterministically_failing_job_retries_in_order(self, tmp_path):
        """The ISSUE scenario: a job that fails deterministically walks
        queued -> running -> queued -> running -> failed with bounded
        attempts, and the history records every transition."""
        worker = JobWorker(RunStore(tmp_path / "runs"),
                           executor=_flaky_executor(99),
                           sleep=lambda _t: None)
        job = worker.run_to_completion(JobSpec("chaos", max_retries=1))
        assert job.history == [QUEUED, RUNNING, QUEUED, RUNNING, FAILED]

    def test_crash_resume_requeues_running_job_exactly_once(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        # Simulate a worker that died mid-job: record stuck in
        # ``running`` with one attempt spent, no result.
        job = store.new_job(JobSpec("chaos", max_retries=3))
        job.transition(RUNNING)
        job.attempts = 1
        store.save_job(job)

        executor = _flaky_executor(0)
        worker = JobWorker(store, executor=executor,
                           sleep=lambda _t: None)
        assert worker.counters["recovered"] == 1
        executed = worker.drain()
        assert executed == 1
        assert executor.calls["count"] == 1  # not duplicated
        final = store.load_job(job.job_id)
        assert final.state == DONE
        assert final.attempts == 2  # the lost attempt still counts
        assert "recovered" in final.history
        assert store.has_result(job.job_id)
        # A second recovery pass finds nothing to do.
        assert JobWorker(store, executor=executor,
                         sleep=lambda _t: None).drain() == 0
        assert executor.calls["count"] == 1

    def test_recovered_jobs_run_before_new_submissions(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        stuck = store.new_job(JobSpec("chaos"))
        stuck.transition(RUNNING)
        store.save_job(stuck)
        order = []

        def executor(spec, fleet_probe=None):
            order.append(spec.params.get("seed"))
            return {"ok": True}

        worker = JobWorker(store, executor=executor,
                           sleep=lambda _t: None)
        worker.run_to_completion(JobSpec("chaos", params={"seed": 1}))
        assert order == [None, 1]  # the recovered job went first

    def test_invalid_spec_never_reaches_the_store(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        worker = JobWorker(store, executor=_flaky_executor(0))
        with pytest.raises(JobValidationError):
            worker.submit(JobSpec("experiment", experiment="fig7",
                                  params={"bogus": 1}))
        assert store.list_jobs() == []


class TestExecutorPayloads:
    def test_experiment_payload_round_trips(self, tmp_path):
        from repro.experiments import ExperimentResult, run_experiment

        payload = execute_job(
            JobSpec("experiment", experiment="fig08"))
        assert payload["kind"] == "experiment"
        assert payload["exp_id"] == "fig8"
        direct = run_experiment("fig8")
        assert payload["result"] == direct.to_dict()
        assert ExperimentResult.from_dict(
            payload["result"]).table_str() == direct.table_str()

    def test_payload_is_json_canonicalizable(self):
        payload = execute_job(
            JobSpec("experiment", experiment="fig7",
                    params={"minutes": 3}))
        blob = canonical_json(payload)
        assert json.loads(blob)["result"]["exp_id"] == "fig7"
