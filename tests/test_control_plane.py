"""Tests for the §5 control-plane wire protocol."""

import pytest

from repro.core.control import (
    CONTROL_MESSAGE_SIZE,
    CeError,
    CeOp,
    ControlPlane,
    decode,
    encode,
)
from repro.core.coreengine import CoreEngine
from repro.cpu.core import Core
from repro.sim import Simulator


@pytest.fixture
def plane():
    sim = Simulator()
    return ControlPlane(CoreEngine(sim, Core(sim)))


class TestWireFormat:
    def test_message_is_eight_bytes(self):
        raw = encode(CeOp.REGISTER_VM, 2, 7)
        assert len(raw) == CONTROL_MESSAGE_SIZE == 8

    def test_roundtrip(self):
        op, arg, data = decode(encode(CeOp.ASSIGN_VM, 3, 42))
        assert (op, arg, data) == (CeOp.ASSIGN_VM, 3, 42)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            decode(b"short")

    def test_negative_data_roundtrips(self):
        _, _, data = decode(encode(CeOp.OK, 0, -5))
        assert data == -5


class TestControlPlane:
    def test_register_vm_over_the_wire(self, plane):
        response = plane.handle(encode(CeOp.REGISTER_VM, 2, 1))
        op, _arg, vm_id = decode(response)
        assert op == CeOp.OK
        device = plane.engine.vm_device(vm_id)
        assert len(device.queue_sets) == 2

    def test_register_assign_deregister_sequence(self, plane):
        _, _, vm_id = decode(plane.handle(encode(CeOp.REGISTER_VM, 1, 1)))
        _, _, nsm_id = decode(plane.handle(encode(CeOp.REGISTER_NSM, 1, 1)))
        op, _, _ = decode(plane.handle(encode(CeOp.ASSIGN_VM, nsm_id, vm_id)))
        assert op == CeOp.OK
        assert plane.engine.vm_to_nsm[vm_id] == nsm_id
        op, _, _ = decode(plane.handle(encode(CeOp.DEREGISTER, 0, vm_id)))
        assert op == CeOp.OK
        assert vm_id not in plane.engine.vm_to_nsm

    def test_assign_unknown_ids_errors(self, plane):
        response = plane.handle(encode(CeOp.ASSIGN_VM, 99, 98))
        op, _, code = decode(response)
        assert op == CeOp.ERROR
        assert code == CeError.UNKNOWN_ID

    def test_malformed_request_errors(self, plane):
        response = plane.handle(b"garbage!")  # 8 bytes but invalid op
        op, _, code = decode(response)
        assert op == CeOp.ERROR
        assert code == CeError.BAD_REQUEST
        assert plane.errors_returned == 1

    def test_truncated_request_errors(self, plane):
        op, _, code = decode(plane.handle(b"123"))
        assert op == CeOp.ERROR
        assert code == CeError.BAD_REQUEST

    def test_counters(self, plane):
        plane.handle(encode(CeOp.REGISTER_VM, 1, 1))
        plane.handle(b"bad")
        assert plane.requests_handled == 1
        assert plane.errors_returned == 1
