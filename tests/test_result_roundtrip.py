"""Property test: ``ExperimentResult.from_dict(to_dict(r))`` is
lossless — ``row_dicts()`` and ``table_str()`` survive exactly, through
JSON too.  This is what lets a stored control-plane result reproduce
the table a direct ``repro run`` would have printed, byte for byte.
"""

import json
import random
import string

import pytest

from repro.experiments.report import ExperimentResult


def _random_result(rng: random.Random) -> ExperimentResult:
    """A randomized but JSON-representable result: mixed cell types,
    odd identifiers, floats across the formatter's branch points."""
    n_cols = rng.randint(1, 6)
    n_rows = rng.randint(0, 8)
    columns = [
        "".join(rng.choices(string.ascii_lowercase + "_", k=rng.randint(1, 10)))
        for _ in range(n_cols)
    ]

    def cell():
        kind = rng.randrange(5)
        if kind == 0:
            return rng.randint(-10**6, 10**6)
        if kind == 1:
            # Floats spanning the table formatter's thresholds
            # (0, <10, <1000, >=1000) and negative values.
            return rng.choice([0.0, -0.0, 1.0]) * rng.random() \
                * 10 ** rng.randint(-3, 6)
        if kind == 2:
            return "".join(rng.choices(string.printable.strip(), k=rng.randint(0, 12)))
        if kind == 3:
            return None
        return rng.choice([True, False])

    rows = [[cell() for _ in range(n_cols)] for _ in range(n_rows)]
    notes = "paper says so" if rng.random() < 0.5 else ""
    return ExperimentResult(
        exp_id=f"fig{rng.randint(0, 99)}", title="randomized Δ check",
        columns=columns, rows=rows, notes=notes)


def _assert_lossless(result: ExperimentResult) -> None:
    clone = ExperimentResult.from_dict(result.to_dict())
    assert clone.row_dicts() == result.row_dicts()
    assert clone.table_str() == result.table_str()
    assert clone.to_dict() == result.to_dict()
    # And through an actual JSON hop, as the RunStore persists it.
    rehydrated = ExperimentResult.from_dict(
        json.loads(json.dumps(result.to_dict())))
    assert rehydrated.table_str() == result.table_str()


class TestRoundTripProperty:
    @pytest.mark.parametrize("seed", range(25))
    def test_randomized_results_round_trip(self, seed):
        rng = random.Random(seed)
        for _ in range(8):
            _assert_lossless(_random_result(rng))

    def test_empty_and_edge_cases(self):
        _assert_lossless(ExperimentResult("e", "", ["only"], []))
        _assert_lossless(ExperimentResult(
            "e", "t", ["a", "b"],
            [[float("1e-12"), 999.9994], [1234567.0, -0.0005]],
            notes="n"))

    @pytest.mark.parametrize("exp_id,kwargs", [
        ("fig7", {"minutes": 3}),
        ("fig8", {}),
    ])
    def test_real_experiments_round_trip(self, exp_id, kwargs):
        from repro.experiments import run_experiment

        _assert_lossless(run_experiment(exp_id, **kwargs))

    def test_from_dict_rejects_unknown_fields(self):
        blob = ExperimentResult("e", "t", ["c"], [[1]]).to_dict()
        blob["sneaky"] = True
        with pytest.raises(ValueError, match="sneaky"):
            ExperimentResult.from_dict(blob)
