"""Deregistering a VM or an NSM with NQEs still in flight (§4.4, §8).

The reclaim path must leave no leaked hugepage buffers, no pooled NQEs
outstanding, and no stale ConnectionTable entries — and the switch must
keep serving everyone else."""

from repro.core.host import NetKernelHost
from repro.core.nqe import NQE_POOL
from repro.errors import SocketError, TimedOutError
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


def _host(sim):
    return NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                      default_delay_sec=usec(25)))


class TestVmDeregisterInflight:
    def test_vm_teardown_mid_stream_reconciles_resources(self):
        outstanding_before = NQE_POOL.outstanding
        sim = Simulator()
        host = _host(sim)
        nsm_c = host.add_nsm("nsmC", vcpus=1, stack="kernel")
        nsm_s = host.add_nsm("nsmS", vcpus=1, stack="kernel")
        server_vm = host.add_vm("srv", vcpus=1, nsm=nsm_s)
        client_vm = host.add_vm("cli", vcpus=1, nsm=nsm_c,
                                op_timeout=5e-3)
        api_s = host.socket_api(server_vm)
        api_c = host.socket_api(client_vm)
        client_region = host.coreengine.vm_device(client_vm.vm_id).hugepages
        stop = {"flag": False}
        state = {"sent": 0}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            conn = yield from api_s.accept(listener)
            try:
                while True:
                    data = yield from api_s.recv(conn, 65536)
                    if not data:
                        break
            except SocketError:
                pass

        def client():
            try:
                sock = yield from api_c.socket()
                yield from api_c.connect(sock, ("nsmS", 80))
                while not stop["flag"]:
                    yield from api_c.send(sock, b"x" * 8192)
                    state["sent"] += 8192
            except (SocketError, TimedOutError):
                pass

        server_vm.spawn(server())
        client_vm.spawn(client())
        # Stall the serving NSM so NQEs pile up in its rings, stop the
        # client issuing new ops, then tear the VM down mid-flight.
        sim.call_at(0.018, lambda: nsm_c.servicelib.stall(6e-3))

        def stop_client():
            stop["flag"] = True

        sim.call_at(0.019, stop_client)
        dropped_before = {}

        def teardown():
            dropped_before["nqes"] = host.coreengine.nqes_dropped
            host.remove_vm(client_vm)

        sim.call_at(0.021, teardown)
        sim.run(until=0.2)

        ce = host.coreengine
        assert state["sent"] > 0
        # In-flight NQEs existed at teardown and were reclaimed, not lost.
        assert ce.nqes_dropped > dropped_before["nqes"]
        # No stale ConnectionTable entries for the vanished VM.
        assert ce.table.entries_for_vm(client_vm.vm_id) == []
        assert "cli" not in host.vms
        # Every payload buffer came back to the client's region …
        assert client_region.live_buffers == 0
        assert client_region.allocated == 0
        # … and every pooled NQE element was released.
        assert NQE_POOL.outstanding == outstanding_before

    def test_switch_keeps_serving_other_vms_after_teardown(self):
        sim = Simulator()
        host = _host(sim)
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        doomed = host.add_vm("doomed", vcpus=1, nsm=nsm, op_timeout=5e-3)
        survivor = host.add_vm("survivor", vcpus=1, nsm=nsm)
        api_d = host.socket_api(doomed)
        api_v = host.socket_api(survivor)
        state = {"after": 0}

        def doomed_app():
            try:
                sock = yield from api_d.socket()
                yield from api_d.bind(sock, 81)
                yield from api_d.listen(sock)
            except (SocketError, TimedOutError):
                pass

        def survivor_app():
            listener = yield from api_v.socket()
            yield from api_v.bind(listener, 80)
            yield from api_v.listen(listener)
            while True:
                yield sim.timeout(5e-3)
                sock = yield from api_v.socket()
                yield from api_v.close(sock)
                if sim.now > 0.02:
                    state["after"] += 1

        doomed.spawn(doomed_app())
        survivor.spawn(survivor_app())
        sim.call_at(0.02, lambda: host.remove_vm(doomed))
        sim.run(until=0.1)
        assert state["after"] > 5  # the switch outlived the teardown


class TestCloseRacesConnect:
    def test_close_during_handshake_releases_parked_connect(self):
        # A CLOSE that reaches ServiceLib while the TCP handshake is in
        # flight must resolve the parked CONNECT request NQE (the stack
        # never fires connect callbacks for a closed socket).
        outstanding_before = NQE_POOL.outstanding
        sim = Simulator()
        host = _host(sim)
        nsm_c = host.add_nsm("nsmC", vcpus=1, stack="kernel")
        nsm_s = host.add_nsm("nsmS", vcpus=1, stack="kernel")
        server_vm = host.add_vm("srv", vcpus=1, nsm=nsm_s)
        client_vm = host.add_vm("cli", vcpus=1, nsm=nsm_c,
                                op_timeout=5e-3)
        api_s = host.socket_api(server_vm)
        api_c = host.socket_api(client_vm)
        state = {}
        result = {}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            yield from api_s.accept(listener)

        def connector():
            sock = yield from api_c.socket()
            state["sock"] = sock
            try:
                yield from api_c.connect(sock, ("nsmS", 80))
                result["connect"] = "ok"
            except (SocketError, TimedOutError) as error:
                result["connect"] = getattr(error, "errno_name", "timeout")

        def closer():
            while "sock" not in state:
                yield sim.timeout(1e-6)
            # One hop of the 25us-per-way handshake is now in flight.
            yield sim.timeout(2e-5)
            yield from api_c.close(state["sock"])

        server_vm.spawn(server())
        client_vm.spawn(connector())
        client_vm.spawn(closer())
        sim.run(until=0.05)

        assert result["connect"] == "ECONNRESET"
        assert NQE_POOL.outstanding == outstanding_before


class TestNsmDeregisterInflight:
    def test_nsm_teardown_resets_connections_and_reconciles(self):
        outstanding_before = NQE_POOL.outstanding
        sim = Simulator()
        host = _host(sim)
        nsm_c = host.add_nsm("nsmC", vcpus=1, stack="kernel")
        nsm_s = host.add_nsm("nsmS", vcpus=1, stack="kernel")
        server_vm = host.add_vm("srv", vcpus=1, nsm=nsm_s)
        client_vm = host.add_vm("cli", vcpus=1, nsm=nsm_c,
                                op_timeout=5e-3)
        api_s = host.socket_api(server_vm)
        api_c = host.socket_api(client_vm)
        client_region = host.coreengine.vm_device(client_vm.vm_id).hugepages
        state = {}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            conn = yield from api_s.accept(listener)
            try:
                while True:
                    data = yield from api_s.recv(conn, 65536)
                    if not data:
                        break
            except SocketError:
                pass

        def client():
            sock = yield from api_c.socket()
            state["sock"] = sock
            yield from api_c.connect(sock, ("nsmS", 80))
            try:
                while True:
                    yield from api_c.send(sock, b"y" * 8192)
            except TimedOutError:
                state["outcome"] = "timeout"
            except SocketError as error:
                state["outcome"] = error.errno_name

        def late_op():
            # Issued just after the stall begins: this SETSOCKOPT is
            # provably sitting in the dead NSM's job ring at teardown,
            # so the reclaim path must fail it fast.
            yield sim.timeout(0.019)
            try:
                yield from api_c.setsockopt(state["sock"], "nodelay", 1)
                state["late_op"] = "ok"
            except (SocketError, TimedOutError) as error:
                state["late_op"] = error.errno_name

        server_vm.spawn(server())
        client_vm.spawn(client())
        client_vm.spawn(late_op())
        # Stall ServiceLib first so the teardown provably happens with
        # NQEs still sitting in the NSM's rings.
        sim.call_at(0.018, lambda: nsm_c.servicelib.stall(0.01))

        def teardown():
            # Orderly NSM shutdown: stop ServiceLib, then unplug the
            # device — with the client's stream still in flight.
            nsm_c.servicelib.crash()
            host.coreengine.deregister(nsm_c.nsm_id)

        sim.call_at(0.02, teardown)
        sim.run(until=0.2)

        ce = host.coreengine
        # The client learned its connection died (fail-fast result or
        # reset event), rather than hanging forever.
        assert state["outcome"] in ("ECONNRESET", "timeout")
        assert state["late_op"] == "ECONNRESET"  # failed fast, not hung
        assert ce.nqes_failed_fast > 0
        # No stale table entries point at the departed NSM.
        assert ce.table.entries_for_nsm(nsm_c.nsm_id) == []
        assert client_vm.vm_id not in ce.vm_to_nsm
        # Resources reconcile once the dust settles.
        assert client_region.live_buffers == 0
        assert client_region.allocated == 0
        assert NQE_POOL.outstanding == outstanding_before
