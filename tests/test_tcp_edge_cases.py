"""TCP engine edge cases: teardown races, zero-window recovery, port
reuse, stray segments."""

import pytest

from repro.net.fabric import Network
from repro.net.packet import Packet
from repro.sim import Simulator
from repro.stack.tcp.engine import TcpEngine
from repro.stack.tcp.tcb import Segment, TcpState
from repro.units import gbps, mbps, usec


def make_pair(sim, rate=gbps(1), **kwargs):
    network = Network(sim, default_rate_bps=rate, default_delay_sec=usec(50))
    a = TcpEngine(sim, network, "A", **kwargs)
    b = TcpEngine(sim, network, "B", **kwargs)
    return network, a, b


def connect(sim, a, b, port=80, backlog=16):
    listener = b.socket()
    b.bind(listener, port)
    b.listen(listener, backlog)
    children = []
    listener.on_accept_ready = lambda lst: children.append(b.accept(lst))
    conn = a.socket()
    a.connect(conn, ("B", port))
    sim.run(until=0.01)
    assert conn.established and children
    return conn, children[0], listener


class TestTeardownRaces:
    def test_simultaneous_close(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        conn, child, _ = connect(sim, a, b)
        a.close(conn)
        b.close(child)
        sim.run(until=2.0)
        assert conn.state == TcpState.CLOSED
        assert child.state == TcpState.CLOSED
        assert a.active_connections == 0
        assert b.active_connections == 0

    def test_close_twice_is_idempotent(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        conn, child, _ = connect(sim, a, b)
        segments_before = a.segments_sent
        a.close(conn)
        a.close(conn)  # second close: no error, no extra FIN
        sim.run(until=2.0)
        # Exactly one FIN left the sender; it now waits for the peer
        # (FIN_WAIT-2 semantics), and closing the peer finishes both.
        assert a.segments_sent == segments_before + 1
        assert conn.state == TcpState.FIN_WAIT
        b.close(child)
        sim.run(until=4.0)
        assert conn.state == TcpState.CLOSED
        assert child.state == TcpState.CLOSED

    def test_listener_close_then_new_listener_same_port(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        listener = b.socket()
        b.bind(listener, 80)
        b.listen(listener)
        b.close(listener)
        listener2 = b.socket()
        b.bind(listener2, 80)  # the port is free again
        b.listen(listener2)
        assert listener2.state == TcpState.LISTEN

    def test_data_after_peer_close_still_acked(self):
        """Half-close: the closed side keeps ACKing inbound data."""
        sim = Simulator()
        _, a, b = make_pair(sim)
        conn, child, _ = connect(sim, a, b)
        a.close(conn)          # A FINs; B in CLOSE_WAIT
        sim.run(until=0.1)
        assert child.state == TcpState.CLOSE_WAIT
        got = []
        conn.on_readable = lambda c: got.append(a.recv(c, 65536))
        b.send(child, b"late data")
        sim.run(until=0.5)
        assert b"".join(got) == b"late data"


class TestZeroWindow:
    def test_persist_probe_reopens_stalled_transfer(self):
        sim = Simulator()
        _, a, b = make_pair(sim, recv_buf_bytes=4096)
        conn, child, _ = connect(sim, a, b)
        # Fill the receiver completely; nobody reads.
        sent = a.send(conn, b"q" * 50_000)
        assert sent == 50_000  # buffered sender-side
        sim.run(until=0.5)
        assert child.recv_buf.window == 0
        stalled_inflight = conn.inflight
        # Now drain the receiver only once; the persist machinery must
        # restart the flow without any sender-side action.
        drained = bytearray()

        def on_readable(c):
            while True:
                data = b.recv(c, 1 << 20)
                if not data:
                    break
                drained.extend(data)

        child.on_readable = on_readable
        on_readable(child)
        sim.run(until=10.0)
        assert len(drained) == 50_000

    def test_receiver_window_never_negative(self):
        sim = Simulator()
        _, a, b = make_pair(sim, recv_buf_bytes=2048)
        conn, child, _ = connect(sim, a, b)
        a.send(conn, b"z" * 20_000)
        for _ in range(50):
            sim.run(until=sim.now + 0.01)
            assert child.recv_buf.window >= 0


class TestStraySegments:
    def test_data_to_closed_port_gets_rst(self):
        sim = Simulator()
        network, a, b = make_pair(sim)
        # Hand-craft a data segment to a port with no listener.
        segment = Segment(seq=1000, ack=0, is_ack=True, payload=b"stray")
        network.send(Packet(("A", 1234), ("B", 4321), len(segment.payload),
                            segment=segment))
        sim.run(until=0.1)
        assert b.resets_sent >= 1

    def test_rst_to_closed_port_is_silent(self):
        sim = Simulator()
        network, a, b = make_pair(sim)
        rst = Segment(seq=1, rst=True)
        network.send(Packet(("A", 1, ), ("B", 9), 0, segment=rst))
        sim.run(until=0.1)
        assert b.resets_sent == 0  # no RST storm

    def test_duplicate_final_ack_harmless(self):
        sim = Simulator()
        network, a, b = make_pair(sim)
        conn, child, _ = connect(sim, a, b)
        a.send(conn, b"ping")
        sim.run(until=0.1)
        # Replay an old ACK from the client.
        dup = Segment(seq=conn.snd_nxt, ack=child.snd_nxt, is_ack=True,
                      window=65535)
        network.send(Packet(("A", conn.local_port), ("B", 80), 0,
                            segment=dup))
        sim.run(until=0.2)
        assert child.established  # nothing broke


class TestPortManagement:
    def test_ephemeral_ports_unique(self):
        sim = Simulator()
        _, a, b = make_pair(sim)
        listener = b.socket()
        b.bind(listener, 80)
        b.listen(listener, 64)
        conns = []
        for _ in range(10):
            conn = a.socket()
            a.connect(conn, ("B", 80))
            conns.append(conn)
        sim.run(until=0.1)
        ports = [c.local_port for c in conns]
        assert len(set(ports)) == 10

    def test_many_sequential_short_connections(self):
        """Port turnover + TIME_WAIT cleanup across many connections."""
        sim = Simulator()
        _, a, b = make_pair(sim)
        listener = b.socket()
        b.bind(listener, 80)
        b.listen(listener, 64)

        def serve(lst):
            while True:
                child = b.accept(lst)
                if child is None:
                    return

                def echo(conn):
                    data = b.recv(conn, 1024)
                    if data:
                        b.send(conn, data)
                        b.close(conn)

                child.on_readable = echo

        listener.on_accept_ready = serve
        completed = []

        def one_round(index):
            conn = a.socket()

            def on_connected(c):
                a.send(c, b"n%d" % index)

            def on_readable(c):
                data = a.recv(c, 1024)
                if data:
                    completed.append(data)
                    a.close(c)

            conn.on_connected = on_connected
            conn.on_readable = on_readable
            a.connect(conn, ("B", 80))

        for index in range(30):
            sim.call_later(index * 0.01, lambda i=index: one_round(i))
        sim.run(until=5.0)
        assert len(completed) == 30
        assert a.active_connections == 0
        assert b.active_connections == 0
