"""Tests for the NK device: ring direction, wake accounting, draining."""

import pytest

from repro.core.nk_device import NKDevice, ROLE_NSM, ROLE_VM
from repro.core.nqe import Nqe, NqeOp
from repro.errors import ConfigurationError
from repro.mem.hugepages import HugepageRegion
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def make_device(sim, role=ROLE_VM, queue_sets=2, poll_window=20e-6):
    return NKDevice(sim, "dev", role, queue_sets,
                    HugepageRegion(page_count=1),
                    poll_window_sec=poll_window)


class TestRingDirection:
    def test_vm_role_produces_job_and_send(self, sim):
        device = make_device(sim, ROLE_VM)
        qs = device.queue_sets[0]
        control, data = device.produce_rings(qs)
        assert control is qs.job and data is qs.send
        control, data = device.consume_rings(qs)
        assert control is qs.completion and data is qs.receive

    def test_nsm_role_is_mirror_image(self, sim):
        device = make_device(sim, ROLE_NSM)
        qs = device.queue_sets[0]
        control, data = device.produce_rings(qs)
        assert control is qs.completion and data is qs.receive
        control, data = device.consume_rings(qs)
        assert control is qs.job and data is qs.send

    def test_unknown_role_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            NKDevice(sim, "x", "weird", 1, HugepageRegion(page_count=1))

    def test_queue_set_for_vcpu_wraps(self, sim):
        device = make_device(sim, queue_sets=2)
        assert device.queue_set_for(0) is device.queue_sets[0]
        assert device.queue_set_for(3) is device.queue_sets[1]


class TestNotification:
    def test_doorbell_callback(self, sim):
        device = make_device(sim)
        rings = []
        device.doorbell = lambda dev: rings.append(dev)
        device.ring_doorbell()
        assert rings == [device]  # the doorbell identifies the kicker

    def test_doorbell_without_handler_is_noop(self, sim):
        make_device(sim).ring_doorbell()  # must not raise

    def test_wake_within_poll_window_counts_polled(self, sim):
        device = make_device(sim, poll_window=1.0)
        device.wait_for_inbound()
        sim.timeout(0.5)
        sim.run()
        device.wake()
        assert device.wakeups_polled == 1
        assert device.wakeups_interrupt == 0

    def test_wake_after_window_counts_interrupt(self, sim):
        device = make_device(sim, poll_window=1e-6)
        device.wait_for_inbound()
        sim.timeout(0.5)
        sim.run()
        device.wake()
        assert device.wakeups_interrupt == 1

    def test_wake_triggers_waiters(self, sim):
        device = make_device(sim)
        event = device.wait_for_inbound()
        event.callbacks.append(lambda _e: None)  # a parked consumer
        device.wake()
        assert event.triggered

    def test_wake_rearms_event(self, sim):
        device = make_device(sim)
        first = device.wait_for_inbound()
        first.callbacks.append(lambda _e: None)
        device.wake()
        second = device.wait_for_inbound()
        assert second is not first
        assert not second.triggered

    def test_wake_without_waiters_is_a_noop(self, sim):
        # No consumer parked on the event: wake must not queue a ghost
        # event (per-NQE wakes during a batched delivery would otherwise
        # flood the event loop) and must keep the same event armed.
        device = make_device(sim)
        event = device.wait_for_inbound()
        before = sim.events_processed
        device.wake()
        device.wake()
        assert not event.triggered
        assert device.wait_for_inbound() is event
        sim.run()
        assert sim.events_processed == before


class TestDraining:
    def test_drain_consume_respects_role(self, sim):
        device = make_device(sim, ROLE_VM)
        qs = device.queue_sets[0]
        qs.completion.push(Nqe(NqeOp.OP_RESULT, 1, 0, 1))
        qs.receive.push(Nqe(NqeOp.DATA_ARRIVED, 1, 0, 1))
        qs.job.push(Nqe(NqeOp.SOCKET, 1, 0, 1))  # produce side: untouched
        batch = device.drain_consume(10, consumer="me")
        assert len(batch) == 2
        assert len(qs.job) == 1

    def test_drain_limit(self, sim):
        device = make_device(sim, ROLE_VM, queue_sets=1)
        qs = device.queue_sets[0]
        for _ in range(5):
            qs.completion.push(Nqe(NqeOp.OP_RESULT, 1, 0, 1))
        assert len(device.drain_consume(3, consumer="me")) == 3

    def test_pending_flags(self, sim):
        device = make_device(sim, ROLE_VM, queue_sets=1)
        qs = device.queue_sets[0]
        assert not device.consume_pending()
        assert not device.produce_pending()
        qs.receive.push(Nqe(NqeOp.DATA_ARRIVED, 1, 0, 1))
        assert device.consume_pending()
        qs.send.push(Nqe(NqeOp.SEND, 1, 0, 1))
        assert device.produce_pending()

    def test_stats_include_wakeups(self, sim):
        device = make_device(sim)
        stats = device.stats()
        assert "wakeups_polled" in stats
        assert "wakeups_interrupt" in stats
