"""Tests for the SPSC ring: capacity, ordering, ownership discipline."""

import pytest

from repro.errors import ResourceError, RingEmptyError, RingFullError
from repro.mem.ring import SpscRing


class TestBasics:
    def test_fifo_order(self):
        ring = SpscRing(8)
        for i in range(5):
            ring.push(i)
        assert [ring.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_enforced(self):
        ring = SpscRing(2)
        ring.push("a")
        ring.push("b")
        assert ring.full
        with pytest.raises(RingFullError):
            ring.push("c")
        assert ring.full_rejections == 1

    def test_pop_empty_raises(self):
        ring = SpscRing(2)
        with pytest.raises(RingEmptyError):
            ring.pop()

    def test_try_variants(self):
        ring = SpscRing(1)
        assert ring.try_pop() is None
        assert ring.try_push("x") is True
        assert ring.try_push("y") is False
        assert ring.try_pop() == "x"

    def test_wraparound(self):
        ring = SpscRing(3)
        for i in range(10):
            ring.push(i)
            assert ring.pop() == i
        assert ring.empty
        assert ring.produced == 10
        assert ring.consumed == 10

    def test_peek_does_not_consume(self):
        ring = SpscRing(4)
        ring.push("a")
        assert ring.peek() == "a"
        assert len(ring) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ResourceError):
            SpscRing(0)


class TestBatching:
    def test_pop_batch_limits(self):
        ring = SpscRing(16)
        for i in range(10):
            ring.push(i)
        batch = ring.pop_batch(4)
        assert batch == [0, 1, 2, 3]
        assert len(ring) == 6

    def test_pop_batch_drains_partial(self):
        ring = SpscRing(16)
        ring.push(1)
        assert ring.pop_batch(10) == [1]

    def test_push_batch_stops_at_capacity(self):
        ring = SpscRing(3)
        pushed = ring.push_batch([1, 2, 3, 4, 5])
        assert pushed == 3
        assert ring.full

    def test_negative_batch_rejected(self):
        ring = SpscRing(4)
        with pytest.raises(ResourceError):
            ring.pop_batch(-1)


class TestBatchWraparound:
    """Batch ops straddling the capacity boundary (slab index math)."""

    def _offset_ring(self, capacity, offset):
        """A ring whose head/tail sit ``offset`` slots in (forces wraps)."""
        ring = SpscRing(capacity)
        for i in range(offset):
            ring.push(("pre", i))
            ring.pop()
        return ring

    def test_push_batch_straddles_capacity(self):
        ring = self._offset_ring(8, 6)  # tail at 6: batch wraps after 2
        assert ring.push_batch(list(range(5))) == 5
        assert [ring.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_pop_batch_straddles_capacity(self):
        ring = self._offset_ring(8, 7)  # head at 7: batch wraps after 1
        for i in range(6):
            ring.push(i)
        assert ring.pop_batch(6) == [0, 1, 2, 3, 4, 5]
        assert ring.empty

    def test_drain_into_straddles_capacity(self):
        ring = self._offset_ring(8, 5)
        for i in range(7):
            ring.push(i)
        buf = []
        n = ring.drain_into(buf, 7)
        assert n == 7
        assert buf[:n] == [0, 1, 2, 3, 4, 5, 6]
        # Drained slots are cleared so the ring keeps no references.
        assert all(slot is None for slot in ring._slots)

    def test_push_batch_count_prefix(self):
        # count=N pushes only the valid prefix of a reused scratch list.
        ring = SpscRing(8)
        scratch = [10, 11, 12, "stale", "stale"]
        assert ring.push_batch(scratch, count=3) == 3
        assert ring.pop_batch(8) == [10, 11, 12]

    def test_drain_into_start_appends_after_prefix(self):
        a, b = SpscRing(4), SpscRing(4)
        a.push("a0"), a.push("a1")
        b.push("b0")
        buf = []
        n = a.drain_into(buf, 4)
        n += b.drain_into(buf, 4 - n, start=n)
        assert n == 3
        assert buf[:n] == ["a0", "a1", "b0"]

    def test_drain_into_reuses_buffer(self):
        ring = SpscRing(8)
        buf = [None] * 8
        for round_ in range(5):
            offset = round_ % 3
            for i in range(offset):  # shift cursors to vary wrap points
                ring.push(i)
                ring.pop()
            for i in range(6):
                ring.push(i)
            before = id(buf)
            assert ring.drain_into(buf, 6) == 6
            assert id(buf) == before and len(buf) == 8

    def test_wraparound_accounting(self):
        ring = self._offset_ring(4, 3)
        assert ring.push_batch([1, 2, 3, 4, 5, 6]) == 4
        # One rejection per overflowing batch (first refused element).
        assert ring.full_rejections == 1
        assert ring.peak_depth == 4
        assert ring.drain_into([], 2) == 2
        ring.push_batch([7])
        assert ring.peak_depth == 4  # depth 3 now; peak unchanged
        assert ring.produced == 3 + 4 + 1
        assert ring.consumed == 3 + 2

    def test_empty_drain_is_allocation_free(self):
        ring = SpscRing(4)
        buf = []
        assert ring.drain_into(buf, 4) == 0
        assert buf == []
        assert ring.list_allocs == 0

    def test_pop_batch_counts_list_allocs(self):
        ring = SpscRing(4)
        ring.push(1)
        ring.pop_batch(4)
        buf = []
        ring.push(2)
        ring.drain_into(buf, 4)
        assert ring.list_allocs == 1  # pop_batch only; drain_into reuses


class TestOwnership:
    def test_single_producer_enforced(self):
        ring = SpscRing(4)
        producer_a, producer_b = object(), object()
        ring.push(1, owner=producer_a)
        with pytest.raises(ResourceError, match="SPSC"):
            ring.push(2, owner=producer_b)

    def test_single_consumer_enforced(self):
        ring = SpscRing(4)
        ring.push(1)
        consumer_a, consumer_b = object(), object()
        ring.try_pop(owner=consumer_a)
        with pytest.raises(ResourceError, match="SPSC"):
            ring.try_pop(owner=consumer_b)

    def test_same_owner_may_repeat(self):
        ring = SpscRing(4)
        owner = object()
        ring.push(1, owner=owner)
        ring.push(2, owner=owner)
        assert ring.pop(owner=object()) == 1  # first consumer claims

    def test_producer_and_consumer_may_differ(self):
        ring = SpscRing(4)
        ring.claim_producer("p")
        ring.claim_consumer("c")
        ring.push(1, owner="p")
        assert ring.pop(owner="c") == 1
