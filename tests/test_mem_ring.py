"""Tests for the SPSC ring: capacity, ordering, ownership discipline."""

import pytest

from repro.errors import ResourceError, RingEmptyError, RingFullError
from repro.mem.ring import SpscRing


class TestBasics:
    def test_fifo_order(self):
        ring = SpscRing(8)
        for i in range(5):
            ring.push(i)
        assert [ring.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_capacity_enforced(self):
        ring = SpscRing(2)
        ring.push("a")
        ring.push("b")
        assert ring.full
        with pytest.raises(RingFullError):
            ring.push("c")
        assert ring.full_rejections == 1

    def test_pop_empty_raises(self):
        ring = SpscRing(2)
        with pytest.raises(RingEmptyError):
            ring.pop()

    def test_try_variants(self):
        ring = SpscRing(1)
        assert ring.try_pop() is None
        assert ring.try_push("x") is True
        assert ring.try_push("y") is False
        assert ring.try_pop() == "x"

    def test_wraparound(self):
        ring = SpscRing(3)
        for i in range(10):
            ring.push(i)
            assert ring.pop() == i
        assert ring.empty
        assert ring.produced == 10
        assert ring.consumed == 10

    def test_peek_does_not_consume(self):
        ring = SpscRing(4)
        ring.push("a")
        assert ring.peek() == "a"
        assert len(ring) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ResourceError):
            SpscRing(0)


class TestBatching:
    def test_pop_batch_limits(self):
        ring = SpscRing(16)
        for i in range(10):
            ring.push(i)
        batch = ring.pop_batch(4)
        assert batch == [0, 1, 2, 3]
        assert len(ring) == 6

    def test_pop_batch_drains_partial(self):
        ring = SpscRing(16)
        ring.push(1)
        assert ring.pop_batch(10) == [1]

    def test_push_batch_stops_at_capacity(self):
        ring = SpscRing(3)
        pushed = ring.push_batch([1, 2, 3, 4, 5])
        assert pushed == 3
        assert ring.full

    def test_negative_batch_rejected(self):
        ring = SpscRing(4)
        with pytest.raises(ResourceError):
            ring.pop_batch(-1)


class TestOwnership:
    def test_single_producer_enforced(self):
        ring = SpscRing(4)
        producer_a, producer_b = object(), object()
        ring.push(1, owner=producer_a)
        with pytest.raises(ResourceError, match="SPSC"):
            ring.push(2, owner=producer_b)

    def test_single_consumer_enforced(self):
        ring = SpscRing(4)
        ring.push(1)
        consumer_a, consumer_b = object(), object()
        ring.try_pop(owner=consumer_a)
        with pytest.raises(ResourceError, match="SPSC"):
            ring.try_pop(owner=consumer_b)

    def test_same_owner_may_repeat(self):
        ring = SpscRing(4)
        owner = object()
        ring.push(1, owner=owner)
        ring.push(2, owner=owner)
        assert ring.pop(owner=object()) == 1  # first consumer claims

    def test_producer_and_consumer_may_differ(self):
        ring = SpscRing(4)
        ring.claim_producer("p")
        ring.claim_consumer("c")
        ring.push(1, owner="p")
        assert ring.pop(owner="c") == 1
