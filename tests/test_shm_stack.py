"""Unit tests for the shared-memory stack (use case 4)."""

import pytest

from repro.cpu.core import Core
from repro.errors import (
    ConnectionRefusedError_,
    InvalidSocketStateError,
    NotConnectedError,
)
from repro.sim import Simulator
from repro.stack.shared_memory_stack import SharedMemoryStack


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def stack(sim):
    return SharedMemoryStack(sim, [Core(sim)], host_id="shm")


def connect_pair(sim, stack, port=9):
    listener = stack.socket()
    stack.bind(listener, port)
    stack.listen(listener, 8)
    client = stack.socket()
    stack.connect(client, ("shm", port))
    sim.run()
    server = stack.accept(listener)
    return client, server


class TestLifecycle:
    def test_connect_accept(self, sim, stack):
        client, server = connect_pair(sim, stack)
        assert client.established and server.established
        assert client.peer is server

    def test_connect_without_listener_refused(self, sim, stack):
        sock = stack.socket()
        with pytest.raises(ConnectionRefusedError_):
            stack.connect(sock, ("shm", 404))

    def test_backlog_limit(self, sim, stack):
        listener = stack.socket()
        stack.bind(listener, 9)
        stack.listen(listener, 1)
        stack.connect(stack.socket(), ("shm", 9))
        with pytest.raises(ConnectionRefusedError_):
            stack.connect(stack.socket(), ("shm", 9))

    def test_double_bind_rejected(self, sim, stack):
        a = stack.socket()
        stack.bind(a, 9)
        stack.listen(a)
        b = stack.socket()
        with pytest.raises(InvalidSocketStateError):
            stack.bind(b, 9)

    def test_send_unconnected_rejected(self, sim, stack):
        with pytest.raises(NotConnectedError):
            stack.send(stack.socket(), b"x")


class TestDataPath:
    def test_bytes_flow_with_integrity(self, sim, stack):
        client, server = connect_pair(sim, stack)
        payload = bytes(range(256)) * 10
        assert stack.send(client, payload) == len(payload)
        sim.run()
        assert stack.recv(server, 1 << 20) == payload

    def test_memory_bandwidth_pacing(self, sim, stack):
        """Copies serialize on the DRAM engine at mem_bw_cap_bps."""
        client, server = connect_pair(sim, stack)
        size = 1_000_000
        stack.send(client, b"z" * size)
        start = sim.now
        got = {}

        def on_readable(chan):
            got.setdefault("at", sim.now)

        server.on_readable = on_readable
        sim.run()
        elapsed = got["at"] - start
        expected = size * 8 / stack.cost.mem_bw_cap_bps
        assert elapsed == pytest.approx(expected, rel=0.2)

    def test_backpressure_when_peer_buffer_full(self, sim, stack):
        client, server = connect_pair(sim, stack)
        server.recv_capacity = 1000
        first = stack.send(client, b"a" * 1500)
        assert first == 1000
        sim.run()
        assert stack.send(client, b"b") == 0  # peer full, nothing read
        stack.recv(server, 500)
        assert stack.send(client, b"b" * 500) == 500

    def test_cpu_cycles_charged(self, sim, stack):
        client, server = connect_pair(sim, stack)
        stack.send(client, b"q" * 10_000)
        sim.run()
        assert stack.cores[0].busy_by_component["shm.copy"] > 0

    def test_eof_after_close_and_drain(self, sim, stack):
        client, server = connect_pair(sim, stack)
        stack.send(client, b"last words")
        stack.close(client)
        sim.run()
        assert stack.recv(server, 100) == b"last words"
        assert server.eof

    def test_close_never_overtakes_data(self, sim, stack):
        """The FIN-after-data ordering fixed during development."""
        client, server = connect_pair(sim, stack)
        stack.send(client, b"x" * 500_000)  # long copy in the pipeline
        stack.close(client)                 # immediately
        events = []
        server.on_readable = lambda c: events.append(
            (sim.now, c.readable_bytes, c.peer_closed))
        sim.run()
        # At the first moment peer_closed was visible, data had arrived.
        closed_events = [e for e in events if e[2]]
        assert closed_events
        data_before_close = any(e[1] > 0 for e in events if not e[2]) or \
            closed_events[0][1] > 0
        assert data_before_close
