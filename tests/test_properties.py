"""Property-based (hypothesis) tests on the core data structures."""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.coreengine import TokenBucket
from repro.mem.hugepages import HugepageRegion
from repro.mem.ring import SpscRing
from repro.sim import Simulator


class RingModel(RuleBasedStateMachine):
    """The SPSC ring must behave exactly like a bounded FIFO."""

    def __init__(self):
        super().__init__()
        self.ring = SpscRing(capacity=8)
        self.model = []
        self.counter = 0

    @rule()
    def push(self):
        accepted = self.ring.try_push(self.counter)
        if len(self.model) < 8:
            assert accepted
            self.model.append(self.counter)
        else:
            assert not accepted
        self.counter += 1

    @rule()
    def pop(self):
        item = self.ring.try_pop()
        if self.model:
            assert item == self.model.pop(0)
        else:
            assert item is None

    @rule(n=st.integers(0, 10))
    def pop_batch(self, n):
        batch = self.ring.pop_batch(n)
        expected, self.model = self.model[:n], self.model[n:]
        assert batch == expected

    @invariant()
    def depth_matches(self):
        assert len(self.ring) == len(self.model)
        assert self.ring.empty == (not self.model)
        assert self.ring.full == (len(self.model) == 8)


TestRingModel = RingModel.TestCase
TestRingModel.settings = settings(max_examples=40,
                                  stateful_step_count=40,
                                  deadline=None)


class RegionModel(RuleBasedStateMachine):
    """Hugepage accounting must always balance."""

    def __init__(self):
        super().__init__()
        self.region = HugepageRegion(page_count=1)  # 2 MiB budget
        self.live = {}

    @rule(size=st.integers(0, 300_000))
    def alloc(self, size):
        buffer = self.region.try_alloc(size)
        if sum(self.live.values()) + size <= self.region.capacity:
            assert buffer is not None
            self.live[buffer.buffer_id] = size
        else:
            assert buffer is None

    @rule()
    def free_one(self):
        if not self.live:
            return
        buffer_id = next(iter(self.live))
        self.region.get(buffer_id).free()
        del self.live[buffer_id]

    @invariant()
    def accounting_balances(self):
        assert self.region.allocated == sum(self.live.values())
        assert self.region.live_buffers == len(self.live)
        assert 0 <= self.region.allocated <= self.region.capacity


TestRegionModel = RegionModel.TestCase
TestRegionModel.settings = settings(max_examples=40,
                                    stateful_step_count=40,
                                    deadline=None)


class TestTokenBucketProperties:
    @given(rate=st.floats(1e3, 1e9), burst=st.floats(1.0, 1e7),
           draws=st.lists(st.floats(1.0, 1e6), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_rate_over_time(self, rate, burst, draws):
        """Total admitted tokens <= burst + rate * elapsed, always."""
        sim = Simulator()
        bucket = TokenBucket(sim, rate, burst)
        admitted = 0.0
        elapsed = 0.0
        max_single = max(draws)
        for amount in draws:
            if bucket.try_consume(amount):
                admitted += amount
            sim.timeout(0.001)
            sim.run()
            elapsed += 0.001
        # Burst may have auto-expanded to admit the largest single op.
        effective_burst = max(burst, rate * 1e-3, max_single)
        assert admitted <= effective_burst + rate * elapsed + 1e-6

    @given(rate=st.floats(1e3, 1e6))
    @settings(max_examples=30, deadline=None)
    def test_time_until_is_sufficient(self, rate):
        sim = Simulator()
        bucket = TokenBucket(sim, rate, burst=rate * 0.01)
        bucket.try_consume(bucket.tokens)  # drain
        need = rate * 0.005
        wait = bucket.time_until(need)
        sim.timeout(wait + 1e-9)
        sim.run()
        assert bucket.try_consume(need)


class TestNqeFuzz:
    @given(raw=st.binary(min_size=32, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_unpack_never_crashes_on_valid_ops(self, raw):
        """Arbitrary 32-byte blobs either decode or raise ValueError —
        never anything else (a malicious guest can write anything into
        shared memory)."""
        from repro.core.nqe import Nqe

        try:
            nqe = Nqe.unpack(raw)
        except ValueError:
            return
        assert 0 <= nqe.vm_id <= 255
        assert 0 <= nqe.queue_set_id <= 255
