"""The repro.obs observability layer: metric primitives, NQE lifecycle
tracing through a real workload, samplers, the zero-cost-when-disabled
guarantee, and the ``repro stats`` CLI surface."""

import json

import pytest

from repro.core.host import NetKernelHost
from repro.net.fabric import Network
from repro.obs import HOP_STAGES, MetricsRegistry, PeriodicSampler, \
    geometric_bounds
from repro.obs.metrics import Histogram
from repro.sim import Simulator
from repro.units import gbps, mbps, usec


# ---------------------------------------------------------------- metrics --

class TestHistogram:
    def test_percentiles_of_known_distribution(self):
        hist = Histogram("h", {}, bounds=geometric_bounds(1e-6, 1.0, 128))
        for i in range(1, 101):
            hist.record(i * 1e-3)  # 1ms .. 100ms
        assert hist.count == 100
        # One-bucket resolution: within ~30% of the exact rank value.
        assert hist.percentile(0.50) == pytest.approx(50e-3, rel=0.35)
        assert hist.percentile(0.99) == pytest.approx(99e-3, rel=0.35)
        # Percentiles never escape the observed range.
        assert hist.min_value <= hist.percentile(0.50) <= hist.max_value
        assert hist.percentile(1.0) <= hist.max_value
        assert hist.mean == pytest.approx(50.5e-3)

    def test_empty_histogram(self):
        hist = Histogram("h", {})
        assert hist.percentile(0.5) == 0.0
        assert hist.mean == 0.0
        snap = hist.snapshot()
        assert snap["count"] == 0 and snap["max"] == 0.0

    def test_overflow_values_counted(self):
        hist = Histogram("h", {}, bounds=geometric_bounds(1e-3, 1.0, 8))
        hist.record(50.0)  # above the top edge
        assert hist.overflow == 1
        assert hist.count == 1
        assert hist.percentile(0.5) == 50.0  # falls back to true max

    def test_merge(self):
        bounds = geometric_bounds(1e-6, 1.0, 16)
        a = Histogram("h", {}, bounds=bounds)
        b = Histogram("h", {}, bounds=bounds)
        a.record(1e-3)
        b.record(1e-2)
        a.merge(b)
        assert a.count == 2
        assert a.max_value == 1e-2
        with pytest.raises(ValueError):
            a.merge(Histogram("h", {}, bounds=geometric_bounds(1e-6, 1.0, 8)))

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            geometric_bounds(0.0, 1.0, 8)
        with pytest.raises(ValueError):
            geometric_bounds(1.0, 0.5, 8)


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("c", vm=1) is reg.counter("c", vm=1)
        assert reg.counter("c", vm=1) is not reg.counter("c", vm=2)
        assert reg.gauge("g") is reg.gauge("g")
        assert reg.histogram("h", vm=1) is reg.histogram("h", vm=1)

    def test_named_iteration_and_snapshot(self):
        reg = MetricsRegistry()
        reg.histogram("nqe.e2e.CONNECT", vm=1).record(1e-4)
        reg.histogram("nqe.hop.guest_to_ce").record(2e-5)
        reg.gauge("ring.depth", owner="vm").set(3, now=0.5)
        assert [h.name for h in reg.histograms_named("nqe.e2e.")] \
            == ["nqe.e2e.CONNECT"]
        assert [g.name for g in reg.gauges_named("ring.")] == ["ring.depth"]
        snap = reg.snapshot()
        assert len(snap["histograms"]) == 2
        assert snap["gauges"][0]["value"] == 3
        json.dumps(snap)  # fully serializable


# ---------------------------------------------------------------- sampler --

class TestPeriodicSampler:
    def test_samples_at_interval(self):
        sim = Simulator()
        ticks = []
        sampler = PeriodicSampler(sim, 1e-3, lambda: ticks.append(sim.now))
        sim.run(until=0.0105)
        assert sampler.samples == 11  # t=0, 1ms, ..., 10ms
        assert ticks[1] == pytest.approx(1e-3)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            PeriodicSampler(Simulator(), 0.0, lambda: None)


# ------------------------------------------------------------- end-to-end --

def _run_workload(enable_obs: bool, transfer_bytes: int = 1 << 16):
    """The quickstart topology; returns (host, obs, done-dict)."""
    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(100),
                      default_delay_sec=usec(25))
    host = NetKernelHost(sim, network)
    obs = (host.enable_observability(sample_interval=100e-6)
           if enable_obs else None)
    nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
    vm_server = host.add_vm("srv", vcpus=1, nsm=nsm)
    vm_client = host.add_vm("cli", vcpus=1, nsm=nsm)
    host.coreengine.set_bandwidth_limit(vm_client.vm_id, mbps(500))
    host.coreengine.set_ops_limit(vm_client.vm_id, 200_000)
    api_s = host.socket_api(vm_server)
    api_c = host.socket_api(vm_client)
    done = {}

    def server():
        listener = yield from api_s.socket()
        yield from api_s.bind(listener, 80)
        yield from api_s.listen(listener)
        conn = yield from api_s.accept(listener)
        received = 0
        while received < transfer_bytes:
            data = yield from api_s.recv(conn, 1 << 16)
            if not data:
                break
            received += len(data)
        yield from api_s.send(conn, b"OK")
        yield from api_s.close(conn)
        done["server_bytes"] = received

    def client():
        yield sim.timeout(0.001)
        sock = yield from api_c.socket()
        yield from api_c.connect(sock, ("nsm0", 80))
        yield from api_c.send(sock, b"x" * transfer_bytes)
        done["reply"] = yield from api_c.recv(sock, 4096)
        yield from api_c.close(sock)
        done["finished_at"] = sim.now

    vm_server.spawn(server())
    vm_client.spawn(client())
    sim.run(until=2.0)
    return host, obs, done


class TestTracingEndToEnd:
    @pytest.fixture(scope="class")
    def traced_run(self):
        return _run_workload(enable_obs=True)

    def test_all_hops_observed(self, traced_run):
        _, obs, done = traced_run
        assert done["reply"] == b"OK"
        by_stage = {s["stage"]: s for s in obs.tracer.hop_snapshot()}
        assert tuple(s["stage"] for s in obs.tracer.hop_snapshot()) \
            == HOP_STAGES
        for stage in HOP_STAGES:
            assert by_stage[stage]["count"] > 0, stage
            assert by_stage[stage]["max"] > 0.0, stage

    def test_e2e_latency_per_request_op(self, traced_run):
        _, obs, _ = traced_run
        e2e = {h.name: h for h in obs.registry.histograms_named("nqe.e2e.")}
        # The client round-trips CONNECT, SOCKET, and CLOSE requests.
        for op in ("CONNECT", "SOCKET", "CLOSE"):
            assert any(name.endswith(op) for name in e2e), op
        connect = next(h for name, h in e2e.items()
                       if name.endswith("CONNECT"))
        # e2e >= sum of constituent hops is hard to assert exactly, but
        # the round trip must at least exceed the one-way hop medians.
        assert connect.percentile(0.5) > 0.0
        # One-way ops (SEND) and unsolicited events (DATA_ARRIVED) too.
        assert any(h.name.endswith("SEND")
                   for h in obs.registry.histograms_named("nqe.oneway."))
        assert any(h.name.endswith("DATA_ARRIVED")
                   for h in obs.registry.histograms_named("nqe.event."))

    def test_report_structure(self, traced_run):
        _, obs, _ = traced_run
        report = obs.report()
        assert [s["stage"] for s in report["stages"]] == list(HOP_STAGES)
        for stage in report["stages"]:
            assert stage["p50_us"] <= stage["p99_us"] <= stage["max_us"]
            assert stage["cycles"] > 0
        kinds = {op["kind"] for op in report["ops"]}
        assert {"e2e", "oneway", "event"} <= kinds
        # Sampled gauges: ring occupancy and token-bucket state.
        assert any(key.startswith("cli.") for key in report["rings"])
        assert any(fields.get("peak_depth", 0) > 0
                   for fields in report["rings"].values())
        client_buckets = next(iter(report["token_buckets"].values()))
        # The capped client VM shows both bucket kinds.
        some_vm = [b for b in report["token_buckets"].values()
                   if set(b) == {"bw", "ops"}]
        assert some_vm, report["token_buckets"]
        assert some_vm[0]["bw"]["rate"] == mbps(500)
        assert report["hugepages"]
        assert report["counters"]["nqe.traced"] > 0
        assert report["coreengine"]["nqes_switched"] > 0
        json.dumps(report)  # JSON-ready end to end
        assert client_buckets  # at least one VM reported

    def test_sampler_ran(self, traced_run):
        _, obs, _ = traced_run
        assert obs.sampler is not None
        assert obs.sampler.samples > 100  # 100 µs interval over ~2 s


class TestZeroCostWhenDisabled:
    def test_timeline_identical_with_and_without_obs(self):
        # Hooks never yield, charge cycles, or create events, so the
        # simulated outcome must match exactly — not approximately.
        host_off, _, done_off = _run_workload(enable_obs=False)
        host_on, _, done_on = _run_workload(enable_obs=True)
        assert done_off["server_bytes"] == done_on["server_bytes"]
        assert done_off["finished_at"] == done_on["finished_at"]
        stats_off = host_off.coreengine.stats()
        stats_on = host_on.coreengine.stats()
        assert stats_off == stats_on

    def test_obs_off_by_default(self):
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                          default_delay_sec=usec(25)))
        assert host.obs is None
        assert host.coreengine.obs is None
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        vm = host.add_vm("vm", vcpus=1, nsm=nsm)
        assert vm.guestlib.obs is None
        assert nsm.servicelib.obs is None

    def test_enable_is_idempotent(self):
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                          default_delay_sec=usec(25)))
        obs = host.enable_observability()
        assert host.enable_observability() is obs


# -------------------------------------------------------------------- CLI --

class TestStatsCli:
    def test_stats_json(self, capsys):
        from repro.cli import main
        assert main(["stats", "--json", "--bytes", "32768"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True and envelope["kind"] == "stats"
        report = envelope["data"]
        assert [s["stage"] for s in report["stages"]] == list(HOP_STAGES)
        assert all(s["count"] > 0 for s in report["stages"])
        assert report["token_buckets"]
        assert report["rings"]

    def test_stats_tables(self, capsys):
        from repro.cli import main
        assert main(["stats", "--bytes", "32768"]) == 0
        out = capsys.readouterr().out
        assert "guest_to_ce" in out
        assert "Token buckets" in out
        assert "CoreEngine:" in out
