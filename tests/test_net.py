"""Tests for packets, links, NICs, vSwitch, and the fabric."""

import pytest

from repro.errors import ConfigurationError
from repro.net.fabric import Network
from repro.net.link import Link
from repro.net.nic import Nic, VNic
from repro.net.packet import HEADER_BYTES, Packet
from repro.net.switch import VSwitch
from repro.sim import Simulator
from repro.units import gbps, mbps, usec


@pytest.fixture
def sim():
    return Simulator()


def make_packet(payload=1000, src=("a", 1), dst=("b", 2), **kwargs):
    return Packet(src, dst, payload, **kwargs)


class TestPacket:
    def test_wire_size_includes_headers(self):
        packet = make_packet(payload=100)
        assert packet.size == 100 + HEADER_BYTES

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            make_packet(payload=-1)

    def test_unique_ids(self):
        ids = {make_packet().packet_id for _ in range(50)}
        assert len(ids) == 50


class TestLink:
    def test_serialization_plus_propagation_delay(self, sim):
        link = Link(sim, rate_bps=1e6, delay_sec=0.01)
        arrived = []
        packet = make_packet(payload=1250 - HEADER_BYTES)  # 10^4 bits
        link.transmit(packet, lambda p: arrived.append(sim.now))
        sim.run()
        assert arrived[0] == pytest.approx(0.01 + 0.01)

    def test_back_to_back_packets_serialize(self, sim):
        link = Link(sim, rate_bps=1e6, delay_sec=0.0)
        times = []
        for _ in range(2):
            link.transmit(make_packet(payload=1250 - HEADER_BYTES),
                          lambda p: times.append(sim.now))
        sim.run()
        assert times[0] == pytest.approx(0.01)
        assert times[1] == pytest.approx(0.02)

    def test_droptail_queue_overflow(self, sim):
        link = Link(sim, rate_bps=1e3, queue_bytes=2000)
        accepted = sum(
            1 for _ in range(5)
            if link.transmit(make_packet(payload=900), lambda p: None))
        assert accepted == 2
        assert link.dropped_packets == 3

    def test_ecn_marking_above_threshold(self, sim):
        link = Link(sim, rate_bps=1e3, queue_bytes=100_000,
                    ecn_threshold_bytes=1000)
        marked = []
        for _ in range(5):
            packet = make_packet(payload=900, ecn_capable=True)
            link.transmit(packet, lambda p: marked.append(p.ecn_marked))
        sim.run()
        assert marked[0] is False       # queue was empty
        assert any(marked[1:])          # backlog exceeded threshold
        assert link.marked_packets >= 1

    def test_non_ecn_packets_never_marked(self, sim):
        link = Link(sim, rate_bps=1e3, queue_bytes=100_000,
                    ecn_threshold_bytes=0)
        got = []
        link.transmit(make_packet(payload=100, ecn_capable=False),
                      lambda p: got.append(p.ecn_marked))
        sim.run()
        assert got == [False]

    def test_loss_injection_deterministic_under_seed(self, sim):
        link_a = Link(sim, rate_bps=1e9, loss_rate=0.5, seed=3)
        link_b = Link(sim, rate_bps=1e9, loss_rate=0.5, seed=3)
        results_a = [link_a.transmit(make_packet(), lambda p: None)
                     for _ in range(20)]
        results_b = [link_b.transmit(make_packet(), lambda p: None)
                     for _ in range(20)]
        assert results_a == results_b
        assert any(not ok for ok in results_a)

    def test_utilization(self, sim):
        link = Link(sim, rate_bps=1e6, delay_sec=0.0)
        link.transmit(make_packet(payload=1250 - HEADER_BYTES),
                      lambda p: None)
        sim.run(until=0.02)
        assert 0.4 < link.utilization() <= 0.6

    def test_invalid_params(self, sim):
        with pytest.raises(ConfigurationError):
            Link(sim, rate_bps=0)
        with pytest.raises(ConfigurationError):
            Link(sim, rate_bps=1e9, delay_sec=-1)
        with pytest.raises(ConfigurationError):
            Link(sim, rate_bps=1e9, loss_rate=1.5)


class TestNic:
    def test_rx_requires_handler(self):
        nic = Nic("host")
        with pytest.raises(ConfigurationError):
            nic.receive(make_packet())

    def test_rx_counters(self):
        nic = Nic("host")
        got = []
        nic.on_receive(got.append)
        nic.receive(make_packet(payload=100))
        assert nic.rx_packets == 1
        assert nic.rx_bytes == 100 + HEADER_BYTES
        assert len(got) == 1

    def test_vnic_is_single_queue(self):
        vnic = VNic("vm1", rate_bps=gbps(10))
        assert vnic.queues == 1
        assert vnic.vm_id == "vm1"


class TestVSwitch:
    def test_local_delivery(self, sim):
        switch = VSwitch(sim, "host")
        got = []
        switch.attach("vmB", got.append)
        switch.forward(make_packet(dst=("vmB", 80)))
        sim.run()
        assert len(got) == 1
        assert switch.local_packets == 1

    def test_uplink_fallback(self, sim):
        switch = VSwitch(sim, "host")
        uplinked = []
        switch.set_uplink(uplinked.append)
        switch.forward(make_packet(dst=("remote", 80)))
        assert len(uplinked) == 1
        assert switch.uplink_packets == 1

    def test_no_route_raises(self, sim):
        switch = VSwitch(sim, "host")
        with pytest.raises(ConfigurationError, match="no route"):
            switch.forward(make_packet(dst=("nowhere", 1)))

    def test_duplicate_port_rejected(self, sim):
        switch = VSwitch(sim, "host")
        switch.attach("vm", lambda p: None)
        with pytest.raises(ConfigurationError):
            switch.attach("vm", lambda p: None)


class TestNetwork:
    def test_endpoint_to_endpoint_delivery(self, sim):
        network = Network(sim, default_rate_bps=gbps(1),
                          default_delay_sec=usec(10))
        got = []
        network.add_endpoint("a", lambda p: None)
        network.add_endpoint("b", got.append)
        network.send(make_packet(src=("a", 1), dst=("b", 2)))
        sim.run()
        assert len(got) == 1

    def test_unknown_destination_raises(self, sim):
        network = Network(sim)
        network.add_endpoint("a", lambda p: None)
        with pytest.raises(ConfigurationError):
            network.send(make_packet(src=("a", 1), dst=("zz", 2)))

    def test_duplicate_endpoint_rejected(self, sim):
        network = Network(sim)
        network.add_endpoint("a", lambda p: None)
        with pytest.raises(ConfigurationError):
            network.add_endpoint("a", lambda p: None)

    def test_bottleneck_in_path(self, sim):
        network = Network(sim, default_rate_bps=gbps(10),
                          default_delay_sec=0.0)
        bottleneck = Link(sim, rate_bps=mbps(1), delay_sec=0.0,
                          name="shared")
        network.set_bottleneck(bottleneck)
        arrivals = []
        network.add_endpoint("a", lambda p: None)
        network.add_endpoint("b", lambda p: arrivals.append(sim.now))
        network.send(make_packet(payload=1250 - HEADER_BYTES,
                                 src=("a", 1), dst=("b", 2)))
        sim.run()
        # 10^4 bits over 1 Mbps dominates the 10G access links.
        assert arrivals[0] == pytest.approx(0.01, rel=0.01)
        assert bottleneck.delivered_packets == 1
