"""Tests for the application-gateway app and trace-replay client —
the functional side of use case 1 (Fig. 8's workload)."""

import pytest

from repro.apps.app_gateway import ApplicationGateway, TraceReplayClient
from repro.core.host import NetKernelHost
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


@pytest.fixture
def env():
    sim = Simulator()
    host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                      default_delay_sec=usec(25)))
    nsm = host.add_nsm("nsm0", vcpus=2, stack="kernel")
    return sim, host, nsm


class TestTraceReplay:
    def test_ag_serves_trace_driven_load(self, env):
        sim, host, nsm = env
        ag_vm = host.add_vm("ag", vcpus=1, nsm=nsm)
        gateway = ApplicationGateway(sim, host.socket_api(ag_vm), port=80,
                                     cores=ag_vm.cores)
        gateway.start(ag_vm)

        client_vm = host.add_vm("tenants", vcpus=2, nsm=nsm)
        # 3 intervals of 50 ms at 2000/4000/1000 rps.
        replay = TraceReplayClient(sim, host.socket_api(client_vm),
                                   ("nsm0", 80),
                                   rates_per_interval=[2000, 4000, 1000],
                                   interval_sec=0.05, connections=4)
        sim.run(until=0.005)
        replay.start(client_vm)
        sim.run(until=5.0)

        expected = (2000 + 4000 + 1000) * 0.05
        assert replay.errors == 0
        assert replay.completed == pytest.approx(expected, rel=0.25)
        assert gateway.stats.requests == replay.completed
        assert replay.latencies
        # The AG's proxy-grade app work is charged to its core.
        assert ag_vm.cores[0].busy_by_component["app.request"] > 0

    def test_open_loop_rate_tracks_trace_shape(self, env):
        """Twice the trace rate should yield roughly twice the requests."""
        sim, host, nsm = env
        ag_vm = host.add_vm("ag", vcpus=1, nsm=nsm)
        gateway = ApplicationGateway(sim, host.socket_api(ag_vm), port=80,
                                     cores=ag_vm.cores)
        gateway.start(ag_vm)
        client_vm = host.add_vm("tenants", vcpus=2, nsm=nsm)
        replay = TraceReplayClient(sim, host.socket_api(client_vm),
                                   ("nsm0", 80),
                                   rates_per_interval=[1000, 2000],
                                   interval_sec=0.05, connections=4)
        sim.run(until=0.005)
        replay.start(client_vm)
        sim.run(until=5.0)
        assert replay.completed == pytest.approx(150, rel=0.3)

    def test_zero_rate_interval_sends_nothing(self, env):
        sim, host, nsm = env
        ag_vm = host.add_vm("ag", vcpus=1, nsm=nsm)
        gateway = ApplicationGateway(sim, host.socket_api(ag_vm), port=80,
                                     cores=ag_vm.cores)
        gateway.start(ag_vm)
        client_vm = host.add_vm("tenants", vcpus=1, nsm=nsm)
        replay = TraceReplayClient(sim, host.socket_api(client_vm),
                                   ("nsm0", 80),
                                   rates_per_interval=[0.0, 400.0],
                                   interval_sec=0.05, connections=2)
        sim.run(until=0.005)
        replay.start(client_vm)
        sim.run(until=0.045)  # still inside the zero interval
        assert replay.sent == 0
        sim.run(until=5.0)   # the 400-rps interval then fires
        assert replay.completed > 0
