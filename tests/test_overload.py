"""Overload control: ring watermarks, governor policy, the EAGAIN
contract, chaos integration, and vectorized/scalar determinism."""

import pytest

from repro.core.coreengine import CoreEngine
from repro.core.host import NetKernelHost
from repro.core.nqe import NQE_POOL, NqeOp
from repro.core.overload import (
    EXEMPT_OPS,
    LEVEL_NORMAL,
    LEVEL_OVERLOADED,
    OverloadGovernor,
    governor_for_device,
)
from repro.cpu.core import Core
from repro.errors import TimedOutError, TryAgainError
from repro.faults.chaos import run_chaos
from repro.mem.ring import SpscRing
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


# -- satellite: consolidated ring occupancy stats ----------------------------


class TestRingWatermarks:
    def test_hwm_tracks_peak_depth(self):
        ring = SpscRing(8)
        for i in range(6):
            ring.try_push(i)
        for _ in range(4):
            ring.pop()
        assert ring.hwm_depth == 6

    def test_take_hwm_resets_window_to_current_depth(self):
        ring = SpscRing(8)
        for i in range(5):
            ring.try_push(i)
        for _ in range(5):
            ring.pop()
        assert ring.take_hwm() == 5
        # Window reset: the new high-watermark is the *current* depth,
        # not the drained history.
        assert ring.hwm_depth == 0
        ring.try_push("x")
        assert ring.take_hwm() == 1

    def test_full_rejections_counted_on_both_push_paths(self):
        ring = SpscRing(2)
        assert ring.try_push("a") and ring.try_push("b")
        assert ring.try_push("c") is False
        with pytest.raises(Exception):
            ring.push("d")
        assert ring.full_rejections == 2


# -- governor policy (unit) ---------------------------------------------------


def _raw_engine(sim, n_vms=1, **kw):
    engine = CoreEngine(sim, Core(sim), batch_size=8, ring_slots=128,
                        **kw)
    governor = engine.enable_overload_control()
    nsm_id, nsm_dev = engine.register_nsm("nsm0", queue_sets=1)
    vms = []
    for i in range(n_vms):
        vm_id, vm_dev = engine.register_vm(f"vm{i}", queue_sets=1)
        engine.assign_vm(vm_id, nsm_id)
        vms.append((vm_id, vm_dev))
    return engine, governor, vms


class TestGovernorPolicy:
    def test_below_overload_everything_admitted(self, sim):
        engine, governor, vms = _raw_engine(sim)
        assert governor.level == LEVEL_NORMAL
        for _ in range(1000):
            assert governor.admit(vms[0][0], NqeOp.SOCKET)
        assert governor.admission_rejections == 0

    def test_quotas_are_weight_proportional(self, sim):
        engine, governor, vms = _raw_engine(sim, n_vms=2)
        (vm_a, _), (vm_b, _) = vms
        governor.set_vm_weight(vm_a, 3.0)
        governor.set_vm_weight(vm_b, 1.0)
        governor.force_overload(until=1.0)
        sim.run(until=450e-6)  # two sampler ticks: level 2, quotas set
        assert governor.level == LEVEL_OVERLOADED

        def admitted(vm_id):
            count = 0
            while governor.admit(vm_id, NqeOp.SETSOCKOPT):
                count += 1
            return count

        share_a, share_b = admitted(vm_a), admitted(vm_b)
        # Idle window -> budget = min_admit_budget (8): 6 vs 2.
        assert share_a == 3 * share_b
        assert share_b >= 1
        assert governor.admission_rejections == 2
        assert governor.vm_admission_rejections == {vm_a: 1, vm_b: 1}

    def test_exempt_ops_bypass_exhausted_quota(self, sim):
        engine, governor, vms = _raw_engine(sim)
        vm_id = vms[0][0]
        governor.force_overload(until=1.0)
        sim.run(until=450e-6)
        while governor.admit(vm_id, NqeOp.SETSOCKOPT):
            pass
        for op in EXEMPT_OPS:
            assert governor.admit(vm_id, op)
        assert not governor.admit(vm_id, NqeOp.SETSOCKOPT)

    def test_forced_overload_decays_one_level_per_clean_sample(self, sim):
        engine, governor, vms = _raw_engine(sim)
        governor.force_overload(until=500e-6)
        sim.run(until=1.5e-3)  # idle: occupancy 0, latency EWMA 0
        # 0 -> 2 (forced), then 2 -> 1 -> 0 one step per clean sample.
        assert governor.level == LEVEL_NORMAL
        assert governor.level_transitions == 3

    def test_stop_disarms_governor(self, sim):
        engine, governor, vms = _raw_engine(sim)
        governor.force_overload(until=1.0)
        sim.run(until=450e-6)
        assert governor.level == LEVEL_OVERLOADED
        governor.stop()
        assert governor.level == LEVEL_NORMAL
        for _ in range(100):
            assert governor.admit(vms[0][0], NqeOp.SETSOCKOPT)

    def test_disable_overload_control_restores_seed_behaviour(self, sim):
        engine, governor, vms = _raw_engine(sim)
        assert engine.overload is governor
        assert governor_for_device(vms[0][1]) is governor
        governor.force_overload(until=1.0)
        sim.run(until=450e-6)
        engine.disable_overload_control()
        # The object stays referenced for end-of-run introspection, but
        # its level pins to 0 and every gate becomes a no-op.
        assert engine.overload is governor
        assert governor.level == LEVEL_NORMAL
        for _ in range(100):
            assert governor.admit(vms[0][0], NqeOp.SETSOCKOPT)

    def test_weight_must_be_positive(self, sim):
        engine, governor, _ = _raw_engine(sim)
        with pytest.raises(ValueError):
            governor.set_vm_weight(1, 0.0)


# -- switch-side shedding -----------------------------------------------------


class TestSwitchShed:
    def _burst(self, sim, vectorized):
        """Force level 2, then push a one-window burst far beyond the
        shed quota, bypassing the admission gate (a misbehaving guest)."""
        pool_before = NQE_POOL.outstanding
        engine, governor, vms = _raw_engine(sim, n_vms=2,
                                            vectorized=vectorized)
        nsm_dev = engine._nsms[min(engine._nsms)].device
        consumed = [0]
        owner = object()

        def consumer():
            qs = nsm_dev.queue_sets[0]
            job_ring, send_ring = nsm_dev.consume_rings(qs)
            scratch: list = []
            while True:
                n = job_ring.drain_into(scratch, 64, owner=owner)
                n += send_ring.drain_into(scratch, 64, owner=owner,
                                          start=n)
                if not n:
                    yield nsm_dev.wait_for_inbound()
                    continue
                for i in range(n):
                    NQE_POOL.release(scratch[i])
                    scratch[i] = None
                consumed[0] += n

        sim.process(consumer())
        governor.force_overload(until=1.0)
        sim.run(until=450e-6)
        eagain = {vm_id: 0 for vm_id, _ in vms}
        completions = {vm_id: 0 for vm_id, _ in vms}
        for vm_id, vm_dev in vms:
            control_ring, _ = vm_dev.produce_rings(vm_dev.queue_sets[0])
            for _ in range(60):
                control_ring.push(
                    NQE_POOL.acquire(NqeOp.SETSOCKOPT, vm_id, 0, 1,
                                     created_at=sim.now),
                    owner=owner)
            vm_dev.ring_doorbell()
        sim.run(until=600e-6)
        for vm_id, vm_dev in vms:
            completion_ring, _ = vm_dev.consume_rings(vm_dev.queue_sets[0])
            scratch: list = []
            n = completion_ring.drain_into(scratch, 200, owner=owner)
            for i in range(n):
                nqe = scratch[i]
                if nqe.op_data < 0:
                    eagain[vm_id] += 1
                else:
                    completions[vm_id] += 1
                NQE_POOL.release(nqe)
        return {
            "sheds": engine.nqes_shed,
            "eagain": eagain,
            "completions": completions,
            "consumed": consumed[0],
            "per_vm": engine.per_vm_drops(),
            "governor": governor.stats(),
            "pool_delta": NQE_POOL.outstanding - pool_before,
        }

    def test_sheds_surface_as_eagain_results(self, sim):
        out = self._burst(sim, vectorized=True)
        assert out["sheds"] > 0
        # Every shed came back to its producer as a -EAGAIN completion:
        # fail-fast, never a silent drop.
        assert sum(out["eagain"].values()) == out["sheds"]
        for vm_id, drops in out["per_vm"].items():
            assert drops["shed"] == out["eagain"][vm_id]
        assert out["governor"]["switch_sheds"] == out["sheds"]
        # NQE accounting balances: bursts + synthesized results all freed.
        assert out["pool_delta"] == 0

    def test_shed_policy_identical_vectorized_and_scalar(self):
        fast = self._burst(Simulator(), vectorized=True)
        slow = self._burst(Simulator(), vectorized=False)
        assert fast == slow


# -- the EAGAIN contract (satellite: errno distinction + seeded jitter) -------


class TestEagainContract:
    def test_eagain_and_etimedout_are_distinct_errnos(self):
        assert TryAgainError.errno_name == "EAGAIN"
        assert TimedOutError.errno_name == "ETIMEDOUT"
        assert issubclass(TryAgainError, Exception)
        assert not issubclass(TryAgainError, TimedOutError)

    def _host_vm(self, backoff_seed):
        sim = Simulator()
        host = NetKernelHost(sim)
        host.add_nsm("nsm-a", vcpus=1, stack="kernel")
        vm = host.add_vm("vm1", op_timeout=5e-3,
                         backoff_seed=backoff_seed)
        return vm.guestlib

    def test_backoff_jitter_is_seeded_and_deterministic(self):
        first = self._host_vm(backoff_seed=5)
        second = self._host_vm(backoff_seed=5)
        third = self._host_vm(backoff_seed=6)
        seq_a = [first._backoff_delay(i) for i in range(4)]
        seq_b = [second._backoff_delay(i) for i in range(4)]
        seq_c = [third._backoff_delay(i) for i in range(4)]
        assert seq_a == seq_b
        assert seq_a != seq_c
        # Jitter stays inside the [0.5, 1.5) band around pure doubling.
        for attempt, delay in enumerate(seq_a):
            nominal = 5e-3 * (2 ** attempt)
            assert 0.5 * nominal <= delay < 1.5 * nominal

    def test_first_attempt_deadline_draws_no_randomness(self):
        gl = self._host_vm(backoff_seed=9)
        state = gl._backoff_rng.getstate()
        assert gl._attempt_deadline(0) == 5e-3
        assert gl._backoff_rng.getstate() == state  # untouched
        assert gl._attempt_deadline(1) != 10e-3  # retries jitter


# -- chaos integration (satellite: overload FaultKind + drop balance) ---------


class TestOverloadChaos:
    def test_overload_plan_arms_governor_without_breaking_traffic(self):
        result = run_chaos(seed=3, plan_name="overload", duration=0.3)
        assert result["faults"]["overloads"] == 1
        # Traffic rode through the forced window: requests completed and
        # nothing leaked or hung.
        assert result["counters"]["requests_ok"] > 0
        assert result["leaks"] == []

    def test_overload_plan_is_seed_deterministic(self):
        first = run_chaos(seed=7, plan_name="overload", duration=0.25)
        second = run_chaos(seed=7, plan_name="overload", duration=0.25)
        assert (first["switch_fingerprint"]
                == second["switch_fingerprint"])
        assert first["leaks"] == [] and second["leaks"] == []

    def test_squeeze_drop_accounting_balances(self):
        result = run_chaos(seed=5, plan_name="hugepage-squeeze",
                           duration=0.3)
        # No governor in this plan: zero sheds, and the squeeze's drops
        # all balance out (the leak census passes).
        assert result["ce"]["nqes_shed"] == 0
        assert result["leaks"] == []


# -- fleet exposure (satellite: per-VM drops through GET /fleet) --------------


class TestFleetExposure:
    def test_snapshot_reports_drops_and_overload(self):
        from repro.ctrl.fleet import fleet_snapshot

        sim = Simulator()
        host = NetKernelHost(sim)
        host.add_nsm("nsm-a", vcpus=1, stack="kernel")
        host.add_vm("vm1")
        snap = fleet_snapshot(host)
        assert snap["overload"] is None  # default: governor off
        assert snap["vms"][0]["drops"] == {
            "dropped": 0, "dropped_backpressure": 0, "shed": 0}
        governor = host.coreengine.enable_overload_control()
        governor.force_overload(until=1.0)
        sim.run(until=450e-6)
        snap = fleet_snapshot(host)
        assert snap["overload"]["level"] == LEVEL_OVERLOADED
        assert snap["counters"]["nqes_shed"] == 0


# -- capacity search ----------------------------------------------------------


class TestCapacitySearch:
    def test_jain_index(self):
        from repro.perf.capacity import jain_fairness

        assert jain_fairness([]) == 1.0
        assert jain_fairness([5, 5, 5]) == pytest.approx(1.0)
        assert jain_fairness([1, 0, 0, 0]) == pytest.approx(0.25)

    def test_bad_inputs_rejected(self):
        from repro.errors import ConfigurationError
        from repro.perf.capacity import run_capacity

        with pytest.raises(ConfigurationError):
            run_capacity(scenario="nope")
        with pytest.raises(ConfigurationError):
            run_capacity(scenario="mux", n_vms=1)
        with pytest.raises(ConfigurationError):
            run_capacity(scenario="mux", rate_lo=100.0, rate_hi=50.0)

    def test_mux_search_is_deterministic_and_graceful(self):
        from repro.perf.capacity import run_capacity

        kw = dict(scenario="mux", seed=0, window=0.004, iterations=3)
        first = run_capacity(**kw)
        second = run_capacity(**kw)
        assert first["fingerprint"] == second["fingerprint"]
        assert first["leaks"] == []
        assert first["pdr"] is not None
        assert first["pdr"]["rate"] >= (first["ndr"] or first["pdr"])["rate"]
        graceful = first["graceful"]
        if graceful is not None:
            assert graceful["hung_ops"] == 0
            assert graceful["jain_fairness"] >= 0.9
        # Overload control engaged somewhere along the sweep.
        assert any(s["rejected"] > 0 or s["eagain"] > 0
                   or s["overload"]["level_transitions"] > 0
                   for s in first["steps"])
