"""NSM autoscaler (PR 6 tentpole, control-loop half).

Unit tests for the sizing policy and the job-queue mechanics, plus the
acceptance invariants on the full fig-autoscale scenarios (clean and
chaos): no VM ever assigned to an inactive NSM, zero dangling forwards,
NQE pool back in balance, and every retirement drained through live
migration.
"""

import pytest

from repro.core.autoscaler import (AutoscalePolicy, assignment_violations,
                                   forward_leak_count, reap_crashed_stack)
from repro.core.host import NetKernelHost
from repro.errors import ConfigurationError
from repro.experiments.fig_autoscale import run_autoscale_scenario
from repro.net.fabric import Network
from repro.sim import Simulator


class TestPolicy:
    def test_desired_nsms_tracks_load_with_headroom(self):
        policy = AutoscalePolicy(nsm_capacity=100.0, headroom=1.0,
                                 min_nsms=1, max_nsms=4)
        assert policy.desired_nsms(0.0) == 1       # clamped to min
        assert policy.desired_nsms(100.0) == 1
        assert policy.desired_nsms(101.0) == 2
        assert policy.desired_nsms(350.0) == 4
        assert policy.desired_nsms(10_000.0) == 4  # clamped to max

    def test_headroom_overprovisions(self):
        policy = AutoscalePolicy(nsm_capacity=100.0, headroom=1.5,
                                 max_nsms=8)
        assert policy.desired_nsms(100.0) == 2  # 150 effective

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(nsm_capacity=0.0)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_nsms=3, max_nsms=2)
        with pytest.raises(ConfigurationError):
            AutoscalePolicy(min_nsms=0)


def _autoscaled_host(signal, **kwargs):
    sim = Simulator()
    host = NetKernelHost(sim, Network(sim))
    host.add_nsm("nsm0", vcpus=1, stack="kernel")
    defaults = dict(
        interval_sec=1e-3, provision_delay_sec=1e-4,
        policy=AutoscalePolicy(nsm_capacity=30.0, headroom=1.0,
                               min_nsms=1, max_nsms=6))
    defaults.update(kwargs)
    auto = host.enable_autoscaler(signal, **defaults)
    return sim, host, auto


class TestControlLoop:
    def test_fleet_tracks_the_signal_up_and_back_down(self):
        # capacity 30, headroom 1.0: desired = 1, 4, 4, 4, 1, 1, ...
        signal = [10.0, 100.0, 100.0, 100.0, 10.0]
        sim, host, auto = _autoscaled_host(signal)
        sim.run(until=0.012)
        auto.stop()
        assert auto.counters["spawned"] == 3
        assert auto.counters["retired"] == 3
        assert auto.counters["retire_aborted"] == 0
        assert auto.managed == {}
        # Only the static floor remains; it is never a retire candidate.
        assert sorted(host.nsms) == ["nsm0"]
        assert len(host.coreengine._active_nsm_ids()) == 1

    def test_callable_signal_and_sequence_clamp(self):
        sim, host, auto = _autoscaled_host(lambda tick: 10.0 * tick)
        assert auto.load_at(0) == 0.0
        assert auto.load_at(7) == 70.0
        auto.stop()
        sim2, host2, auto2 = _autoscaled_host([5.0, 15.0])
        assert auto2.load_at(0) == 5.0
        assert auto2.load_at(99) == 15.0  # holds the last sample
        auto2.stop()

    def test_second_autoscaler_rejected(self):
        sim, host, auto = _autoscaled_host([10.0])
        with pytest.raises(ConfigurationError):
            host.enable_autoscaler([10.0])
        auto.stop()

    def test_stop_halts_decisions_and_worker(self):
        sim, host, auto = _autoscaled_host([10.0, 100.0])
        sim.run(until=0.012)
        auto.stop()
        sim.run(until=0.02)
        ticks = auto.counters["ticks"]
        sim.run(until=0.03)
        assert auto.counters["ticks"] == ticks

    def test_crashed_managed_nsm_is_reaped_and_replaced(self):
        """Quarantine of a managed NSM submits a reap job: its stack
        state is torn down, the husk leaves the host registry, and the
        next tick re-spawns toward the desired count."""
        sim, host, auto = _autoscaled_host([60.0])  # desired = 2
        host.enable_failover(heartbeat_interval=1e-3,
                             detection_timeout=3e-3)

        def crash_managed():
            name, nsm = sorted(auto.managed.items())[0]
            nsm.servicelib.crash()

        sim.call_at(4e-3, crash_managed)
        sim.run(until=0.03)
        auto.stop()
        actions = [event["action"] for event in auto.events]
        assert "reap" in actions
        assert auto.counters["spawned"] >= 2  # original + replacement
        assert len(auto.retired_stacks) >= 1
        assert auto.violations == []
        assert assignment_violations(host) == []
        assert forward_leak_count(host, auto.retired_stacks) == 0
        # The fleet is back at strength with only live NSMs serving.
        assert len(host.coreengine._active_nsm_ids()) == 2


class TestShardAwareSpawn:
    def test_spawn_lands_on_emptiest_shard(self):
        """On a sharded switch, scale-out fills empty shards before
        doubling up anywhere: one serving NSM per switching core."""
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim), ce_shards=3)
        host.add_nsm("nsm0", vcpus=1, stack="kernel", shard=0)
        auto = host.enable_autoscaler(
            [100.0], interval_sec=1e-3, provision_delay_sec=1e-4,
            policy=AutoscalePolicy(nsm_capacity=30.0, headroom=1.0,
                                   min_nsms=1, max_nsms=3))
        sim.run(until=0.005)
        auto.stop()
        engine = host.coreengine
        spawned = [nsm for name, nsm in host.nsms.items() if name != "nsm0"]
        assert len(spawned) == 2  # desired 4, clamped to max_nsms=3
        homes = sorted(engine.shard_of_nsm(nsm.nsm_id) for nsm in spawned)
        assert homes == [1, 2]
        report = auto.report()
        assert sorted(report["shard_loads"]) == [0, 1, 2]
        assert all(row["nsms"] == 1
                   for row in report["shard_loads"].values())

    def test_report_has_no_shard_loads_on_single_core_switch(self):
        sim, host, auto = _autoscaled_host([10.0])
        auto.stop()
        assert auto.report()["shard_loads"] is None


class TestInvariantHelpers:
    def test_assignment_violation_detected_without_standby(self):
        """With no standby, quarantine leaves the VM pointing at the
        dead NSM (by design) — exactly what the helper must flag."""
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim))
        nsm = host.add_nsm("only", vcpus=1, stack="kernel")
        vm = host.add_vm("vm", nsm=nsm)
        assert assignment_violations(host) == []
        host.coreengine.quarantine_nsm(nsm.nsm_id, reason="test")
        assert assignment_violations(host) == [(vm.vm_id, nsm.nsm_id)]

    def test_reap_crashed_stack_counts_and_idempotence(self):
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim))
        nsm = host.add_nsm("nsm", vcpus=1, stack="kernel")
        stats = reap_crashed_stack(nsm.stack)
        assert stats == {"conns": 0, "listeners": 0}
        assert reap_crashed_stack(object()) == {"conns": 0, "listeners": 0}


@pytest.fixture(scope="module")
def clean_run():
    return run_autoscale_scenario(seed=0, chaos=False)


@pytest.fixture(scope="module")
def chaos_run():
    return run_autoscale_scenario(seed=0, chaos=True)


class TestScenarioInvariants:
    def test_clean_run_scales_and_serves(self, clean_run):
        counters = clean_run["autoscaler"]["counters"]
        assert clean_run["workload"]["rtts"] > 100
        assert counters["spawned"] >= 1
        assert counters["retired"] >= 1
        assert counters["migrations"] >= 1  # retire drains via migration

    def test_clean_run_leaves_no_state_behind(self, clean_run):
        assert clean_run["violations"] == []
        assert clean_run["forward_leaks"] == 0
        # A clean shutdown closes everything, so even live routing
        # state must be gone, not just dangling entries.
        assert clean_run["forward_entries"] == 0
        assert clean_run["table_entries"] == 0
        assert clean_run["pool_delta"] == 0

    def test_clean_run_exercises_the_shards(self, clean_run):
        assert clean_run["handoffs"] > 0

    def test_chaos_run_recovers_with_invariants_intact(self, chaos_run):
        """An NSM crash mid-rebalance: failover + reap recover it, and
        the acceptance invariants hold — zero dangling forwards, zero
        inactive assignments at every job boundary, pool balanced."""
        assert chaos_run["violations"] == []
        assert chaos_run["forward_leaks"] == 0
        assert chaos_run["pool_delta"] == 0
        counters = chaos_run["autoscaler"]["counters"]
        assert counters["spawned"] >= 1
        assert chaos_run["workload"]["rtts"] > 50  # service continued

    def test_registry_knows_fig_autoscale(self):
        from repro.experiments.registry import REGISTRY
        assert "fig-autoscale" in REGISTRY
