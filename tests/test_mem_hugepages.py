"""Tests for the hugepage region allocator."""

import pytest

from repro.errors import HugepageExhaustedError, ResourceError
from repro.mem.hugepages import DEFAULT_PAGE_COUNT, PAGE_SIZE, HugepageRegion


class TestAllocation:
    def test_paper_configuration(self):
        region = HugepageRegion()
        assert region.capacity == DEFAULT_PAGE_COUNT * PAGE_SIZE
        assert PAGE_SIZE == 2 * 1024 * 1024
        assert DEFAULT_PAGE_COUNT == 128

    def test_alloc_free_roundtrip(self):
        region = HugepageRegion(page_count=1)
        buffer = region.alloc(1000)
        assert region.allocated == 1000
        buffer.free()
        assert region.allocated == 0
        assert region.live_buffers == 0

    def test_exhaustion_raises(self):
        region = HugepageRegion(page_count=1)
        region.alloc(PAGE_SIZE)
        with pytest.raises(HugepageExhaustedError):
            region.alloc(1)

    def test_try_alloc_returns_none_when_full(self):
        region = HugepageRegion(page_count=1)
        region.alloc(PAGE_SIZE)
        assert region.try_alloc(1) is None

    def test_negative_alloc_rejected(self):
        with pytest.raises(ResourceError):
            HugepageRegion().alloc(-5)

    def test_peak_tracking(self):
        region = HugepageRegion(page_count=1)
        a = region.alloc(1000)
        b = region.alloc(500)
        a.free()
        region.alloc(100)
        assert region.peak_allocated == 1500


class TestBuffers:
    def test_data_roundtrip(self):
        region = HugepageRegion()
        buffer = region.alloc(64)
        buffer.write(b"hello")
        assert buffer.read() == b"hello"

    def test_write_oversized_rejected(self):
        region = HugepageRegion()
        buffer = region.alloc(4)
        with pytest.raises(ResourceError):
            buffer.write(b"too long")

    def test_data_pointer_resolution(self):
        region = HugepageRegion()
        buffer = region.alloc(16)
        assert region.get(buffer.buffer_id) is buffer

    def test_dangling_pointer_rejected(self):
        region = HugepageRegion()
        with pytest.raises(ResourceError, match="dangling"):
            region.get(9999)

    def test_double_free_rejected(self):
        region = HugepageRegion()
        buffer = region.alloc(16)
        buffer.free()
        with pytest.raises(ResourceError, match="double free"):
            buffer.free()

    def test_use_after_free_rejected(self):
        region = HugepageRegion()
        buffer = region.alloc(16)
        buffer.free()
        with pytest.raises(ResourceError):
            buffer.write(b"x")
        with pytest.raises(ResourceError):
            buffer.read()

    def test_buffer_ids_unique(self):
        region = HugepageRegion()
        ids = {region.alloc(8).buffer_id for _ in range(100)}
        assert len(ids) == 100
