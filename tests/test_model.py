"""Tests for the analytic models against the paper's reported numbers.

Tolerances are deliberately loose where the paper's curve has effects the
calibrated model abstracts (documented in EXPERIMENTS.md); tight where
the constants were fitted directly.
"""

import pytest

from repro.cpu.cost_model import DEFAULT_COST_MODEL
from repro.model import multiplexing as mx
from repro.model import overhead
from repro.model import throughput as tp
from repro.model.pipeline import PipelineModel, Stage
from repro.trace.ag_trace import generate_fleet


class TestPipeline:
    def test_bottleneck_is_min_stage(self):
        model = PipelineModel([
            Stage("fast", cycles_per_op=100, cores=1),
            Stage("slow", cycles_per_op=1000, cores=1),
        ])
        hz = DEFAULT_COST_MODEL.core_hz
        assert model.throughput_ops() == pytest.approx(hz / 1000)
        assert model.bottleneck().name == "slow"

    def test_rate_cap_overrides_cpu(self):
        model = PipelineModel([
            Stage("capped", cycles_per_op=1, cores=8, rate_cap=500.0),
        ])
        assert model.throughput_ops() == 500.0

    def test_zero_cost_stage_is_infinite(self):
        stage = Stage("free", cycles_per_op=0)
        assert stage.capacity(1e9) == float("inf")

    def test_utilizations(self):
        model = PipelineModel([Stage("s", cycles_per_op=1000, cores=1)])
        hz = DEFAULT_COST_MODEL.core_hz
        utils = model.utilizations(offered_ops=hz / 2000)
        assert utils["s"] == pytest.approx(0.5)

    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            Stage("bad", cycles_per_op=-1)
        with pytest.raises(ValueError):
            PipelineModel([])


class TestStreamThroughput:
    @pytest.mark.parametrize("direction,streams,paper", [
        ("send", 1, 30.9), ("recv", 1, 13.6),
        ("send", 8, 55.2), ("recv", 8, 17.4),
    ])
    def test_baseline_tops_match_figs_13_16(self, direction, streams, paper):
        measured = tp.stream_throughput_gbps("baseline", direction, 16384,
                                             streams=streams)
        assert measured == pytest.approx(paper, rel=0.1)

    @pytest.mark.parametrize("direction,streams", [
        ("send", 1), ("recv", 1), ("send", 8), ("recv", 8),
    ])
    def test_netkernel_on_par_with_baseline(self, direction, streams):
        """The headline parity claim of §7.3."""
        for size in (64, 1024, 8192, 16384):
            baseline = tp.stream_throughput_gbps("baseline", direction,
                                                 size, streams=streams)
            netkernel = tp.stream_throughput_gbps("netkernel", direction,
                                                  size, streams=streams)
            assert netkernel == pytest.approx(baseline, rel=0.25)

    def test_throughput_monotone_in_message_size(self):
        values = [tp.stream_throughput_gbps("netkernel", "send", s,
                                            streams=8)
                  for s in (64, 256, 1024, 4096, 16384)]
        assert values == sorted(values)

    def test_fig18_line_rate_by_4_vcpus(self):
        nk = tp.stream_throughput_gbps("netkernel", "send", 8192, 8,
                                       vm_vcpus=4, nsm_vcpus=4)
        base = tp.stream_throughput_gbps("baseline", "send", 8192, 8,
                                         vm_vcpus=4)
        assert nk == pytest.approx(100.0, rel=0.01)
        assert base == pytest.approx(100.0, rel=0.01)

    def test_fig19_recv_91g_at_8_vcpus(self):
        for arch, kwargs in (("baseline", {"vm_vcpus": 8}),
                             ("netkernel", {"vm_vcpus": 8, "nsm_vcpus": 8})):
            measured = tp.stream_throughput_gbps(arch, "recv", 8192, 8,
                                                 **kwargs)
            assert measured == pytest.approx(91.0, rel=0.05)

    def test_table4_send_saturates_at_vm_ceiling(self):
        values = [tp.stream_throughput_gbps("netkernel", "send", 8192, 8,
                                            vm_vcpus=1, nsm_vcpus=2,
                                            nsm_count=k)
                  for k in (1, 2, 3, 4)]
        assert values[0] == pytest.approx(85.1, rel=0.12)
        assert values[1] == pytest.approx(94.0, rel=0.03)
        assert values[3] == pytest.approx(94.2, rel=0.03)

    def test_table4_recv_scales_to_cap(self):
        values = [tp.stream_throughput_gbps("netkernel", "recv", 8192, 8,
                                            vm_vcpus=1, nsm_vcpus=2,
                                            nsm_count=k)
                  for k in (1, 2, 3, 4)]
        assert values[0] == pytest.approx(33.6, rel=0.1)
        assert values[3] == pytest.approx(91.0, rel=0.05)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            tp.stream_throughput_gbps("baseline", "sideways", 8192)
        with pytest.raises(ValueError):
            tp.stream_throughput_gbps("quantum", "send", 8192)


class TestMicrobenchModels:
    def test_fig11_endpoints(self):
        assert tp.nqe_switch_rate(1) == pytest.approx(8.0e6, rel=0.05)
        assert tp.nqe_switch_rate(256) == pytest.approx(198.5e6, rel=0.05)

    def test_fig12_endpoints(self):
        assert tp.memcopy_throughput_gbps(64) == pytest.approx(4.9, rel=0.1)
        assert tp.memcopy_throughput_gbps(8192) == pytest.approx(144.2,
                                                                 rel=0.05)


class TestRps:
    def test_fig17_parity_at_70k(self):
        baseline = tp.requests_per_second("baseline")
        netkernel = tp.requests_per_second("netkernel")
        assert baseline == pytest.approx(70e3, rel=0.05)
        assert netkernel == pytest.approx(baseline, rel=0.1)

    def test_fig20_kernel_scaling(self):
        one = tp.requests_per_second("netkernel", vcpus=1)
        eight = tp.requests_per_second("netkernel", vcpus=8)
        assert eight / one == pytest.approx(5.7, rel=0.05)
        assert eight == pytest.approx(400e3, rel=0.1)

    def test_fig20_mtcp_values(self):
        for vcpus, paper in tp.PAPER["fig20_mtcp_rps"].items():
            measured = tp.requests_per_second("netkernel", stack="mtcp",
                                              vcpus=vcpus)
            assert measured == pytest.approx(paper, rel=0.1)

    def test_table3_kernel_vs_mtcp_speedup_band(self):
        """mTCP gives 1.4x-1.9x over the kernel NSM (§6.3)."""
        for vcpus in (1, 2, 4):
            kernel = tp.requests_per_second("netkernel", vcpus=vcpus,
                                            app="nginx", reuseport=False)
            mtcp = tp.requests_per_second("netkernel", stack="mtcp",
                                          vcpus=vcpus, app="nginx",
                                          reuseport=False)
            assert 1.25 <= mtcp / kernel <= 2.0

    def test_table3_absolute_values(self):
        for vcpus, paper in tp.PAPER["table3_kernel_rps"].items():
            measured = tp.requests_per_second("netkernel", vcpus=vcpus,
                                              app="nginx", reuseport=False)
            assert measured == pytest.approx(paper, rel=0.12)
        for vcpus, paper in tp.PAPER["table3_mtcp_rps"].items():
            measured = tp.requests_per_second("netkernel", stack="mtcp",
                                              vcpus=vcpus, app="nginx",
                                              reuseport=False)
            assert measured == pytest.approx(paper, rel=0.12)

    def test_table4_rps_scales_with_nsm_count(self):
        values = [tp.requests_per_second("netkernel", vcpus=2, vm_vcpus=1,
                                         nsm_count=k)
                  for k in (1, 2, 3, 4)]
        assert values[1] == pytest.approx(2 * values[0], rel=0.05)
        assert values[3] == pytest.approx(520e3, rel=0.1)

    def test_reuseport_matters_for_kernel_only(self):
        with_rp = tp.requests_per_second("netkernel", vcpus=4)
        without = tp.requests_per_second("netkernel", vcpus=4,
                                         reuseport=False)
        assert with_rp > without
        mtcp_with = tp.requests_per_second("netkernel", stack="mtcp",
                                           vcpus=4)
        mtcp_without = tp.requests_per_second("netkernel", stack="mtcp",
                                              vcpus=4, reuseport=False)
        assert mtcp_with == mtcp_without  # per-core accept queues


class TestShm:
    def test_fig10_netkernel_reaches_100g(self):
        assert tp.shm_throughput_gbps(8192) == pytest.approx(101.0, rel=0.05)

    def test_fig10_speedup_about_2x_at_large_messages(self):
        nk = tp.shm_throughput_gbps(8192)
        baseline = tp.baseline_colocated_gbps(8192)
        assert 1.6 <= nk / baseline <= 2.6

    def test_small_messages_no_big_win(self):
        nk = tp.shm_throughput_gbps(64)
        baseline = tp.baseline_colocated_gbps(64)
        assert nk / baseline < 2.0


class TestOverhead:
    def test_table6_rises_with_throughput(self):
        ratios = [overhead.overhead_ratio_throughput(g)
                  for g in (20, 40, 60, 80, 100)]
        assert all(r > 1.0 for r in ratios)
        assert ratios == sorted(ratios)
        assert ratios[-1] - ratios[0] > 0.2  # a real ramp, not flat

    def test_table7_flat_and_mild(self):
        ratios = [overhead.overhead_ratio_rps(r)
                  for r in (100e3, 300e3, 500e3)]
        assert all(1.0 < r < 1.2 for r in ratios)
        assert max(ratios) - min(ratios) < 0.02

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            overhead.overhead_ratio_rps(0)
        with pytest.raises(ValueError):
            overhead.cycles_per_second_bulk("quantum", 10)


class TestMultiplexing:
    def test_table2_matches_paper(self):
        fleet = generate_fleet(200, seed=7)
        packing = mx.table2_packing(fleet)
        assert packing["baseline_ags"] == 16
        assert packing["netkernel_ags"] >= 25
        assert packing["cores_saved_fraction"] >= 0.35
        assert packing["nsm_mean_utilization"] < 0.6

    def test_fig8_saves_cores(self):
        from repro.experiments.fig07_trace import canonical_ags

        result = mx.fig8_comparison(canonical_ags())
        assert result["baseline_cores"] == 12
        assert result["netkernel_cores"] < result["baseline_cores"]
        assert result["per_core_improvement"] > 1.2

    def test_more_ags_never_fewer_nsm_cores(self):
        fleet = generate_fleet(20, seed=3)
        few = mx.nsm_cores_for(fleet[:5])
        many = mx.nsm_cores_for(fleet)
        assert many >= few


class TestLatencyModel:
    def test_little_law_regime(self):
        from repro.model import latency

        # Saturated closed loop: mean = N / capacity.
        mean = latency.closed_loop_mean_latency(1000, 70e3)
        assert mean == pytest.approx(1000 / 70e3)

    def test_unloaded_regime(self):
        from repro.model import latency

        mean = latency.closed_loop_mean_latency(1, 70e3,
                                                base_rtt=100e-6)
        assert mean == pytest.approx(100e-6 + 1 / 70e3)

    def test_table5_means_match_paper_scale(self):
        """The paper's Table 5 means follow from Fig. 20's capacities."""
        from repro.model import latency

        rows = latency.table5_prediction(concurrency=1000)
        assert rows["Baseline"]["mean_ms"] == pytest.approx(16, rel=0.15)
        assert rows["NetKernel"]["mean_ms"] == pytest.approx(
            rows["Baseline"]["mean_ms"], rel=0.1)
        assert rows["NetKernel, mTCP NSM"]["mean_ms"] == pytest.approx(
            4, rel=0.45)

    def test_syn_retry_tail_matches_paper_max(self):
        """~5 retries at Linux's 1s SYN RTO lands near the 7019 ms max."""
        from repro.model import latency

        assert latency.syn_retry_completion_time(3) == pytest.approx(7.0)

    def test_invalid_inputs(self):
        from repro.model import latency

        with pytest.raises(ValueError):
            latency.closed_loop_mean_latency(0, 1000)
        with pytest.raises(ValueError):
            latency.closed_loop_mean_latency(10, 0)
        with pytest.raises(ValueError):
            latency.syn_retry_completion_time(-1)
