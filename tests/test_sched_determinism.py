"""Ready-set scheduling must not change the simulated timeline.

The CoreEngine ready-set scheduler (``scan="ready"``) is a wall-clock
optimization only: every experiment output, stat, latency, and drop
counter must be bit-identical to the seed full-scan (``scan="full"``).
This suite runs representative workloads under both modes and diffs the
results, and unit-tests the supporting machinery (cancellable timeouts,
the NQE pool, the stale-wakeup fix).
"""

import itertools
from contextlib import contextmanager

import pytest

from repro.core import coreengine
from repro.core.coreengine import CoreEngine
from repro.core.nqe import NQE_POOL, Nqe, NqeOp, NqePool
from repro.cpu.core import Core
from repro.errors import SimulationError
from repro.experiments import run_experiment
from repro.perf.bench import _mux_workload
from repro.sim import Simulator


def _reset_global_counters():
    """Rewind the process-wide id counters (socket ids, NQE tokens,
    packet ids, ...) and drain the NQE pool so two in-process runs start
    from identical state.  Socket ids feed ``hash(vm_tuple)`` (the NSM
    queue-set choice), so without this two *same-mode* runs in one
    process already diverge — that leakage predates this suite and would
    mask a genuine scheduler divergence."""
    from repro.core import guestlib, nqe, servicelib
    from repro.net import packet
    from repro.stack import udp
    from repro.stack.tcp import engine as tcp_engine

    nqe._tokens = itertools.count(1)
    nqe.NQE_POOL._free.clear()
    guestlib.NetKernelSocket._ids = itertools.count(1)
    servicelib._SocketContext._ids = itertools.count(1)
    packet._packet_ids = itertools.count(1)
    tcp_engine._conn_ids = itertools.count(1)
    udp.UdpSocket._ids = itertools.count(1)


@contextmanager
def vectorized_mode(flag):
    """Flip every vectorized default (CoreEngine routing and TCP stream
    buffers) so unchanged experiment code builds its whole datapath in
    the given mode, with global counters rewound for comparability.
    ``tcp.engine`` imports the buffer default by value, so it is patched
    in both modules."""
    from repro.stack.tcp import buffers, engine as tcp_engine

    previous = (coreengine.DEFAULT_VECTORIZED, buffers.VECTORIZED_DEFAULT,
                tcp_engine.VECTORIZED_DEFAULT)
    coreengine.DEFAULT_VECTORIZED = flag
    buffers.VECTORIZED_DEFAULT = flag
    tcp_engine.VECTORIZED_DEFAULT = flag
    _reset_global_counters()
    try:
        yield
    finally:
        (coreengine.DEFAULT_VECTORIZED, buffers.VECTORIZED_DEFAULT,
         tcp_engine.VECTORIZED_DEFAULT) = previous


@contextmanager
def scan_mode(mode):
    """Flip the default scan mode so unchanged experiment code (which
    never passes ``scan=``) builds its CoreEngine in the given mode,
    with global counters rewound for run-for-run comparability."""
    previous = coreengine.DEFAULT_SCAN_MODE
    coreengine.DEFAULT_SCAN_MODE = mode
    _reset_global_counters()
    try:
        yield
    finally:
        coreengine.DEFAULT_SCAN_MODE = previous


def _strip_sched(stats):
    """Scheduler bookkeeping is allowed to differ between modes; the
    datapath counters are not."""
    return {key: value for key, value in stats.items()
            if not key.startswith("sched.")}


def _experiment_outputs(exp_id, **kwargs):
    result = run_experiment(exp_id, **kwargs)
    return result.rows, result.notes


class TestExperimentsIdenticalAcrossModes:
    """Full experiments, byte-identical rows/notes under both schedulers."""

    @pytest.mark.parametrize("exp_id,kwargs", [
        ("fig8", {}),
        ("fig9", {"duration": 0.3}),
        ("fig21", {"scale": 0.02, "time_factor": 0.1}),
        ("table5", {"requests": 200, "concurrency": 40}),
    ])
    def test_rows_and_notes_match(self, exp_id, kwargs):
        with scan_mode("ready"):
            ready = _experiment_outputs(exp_id, **kwargs)
        with scan_mode("full"):
            full = _experiment_outputs(exp_id, **kwargs)
        assert ready == full

    def test_transfer_fingerprint_matches(self):
        from tests.test_determinism import run_transfer_fingerprint

        with scan_mode("ready"):
            ready = run_transfer_fingerprint()
        with scan_mode("full"):
            full = run_transfer_fingerprint()
        assert ready == full


class TestRawSwitchIdenticalAcrossModes:
    """Raw NK-device workloads (no GuestLib): timeline fingerprints."""

    def test_multiplexing_fingerprint(self):
        ready = _mux_workload("ready", n_vms=40, active_vms=4,
                              nqes_per_active=50)
        full = _mux_workload("full", n_vms=40, active_vms=4,
                             nqes_per_active=50)
        assert ready == full

    def test_rate_limited_fingerprint(self):
        """Stalled devices re-arm every pass, so admission rechecks (and
        their float-path-dependent token refills) happen at the same
        instants in both modes."""
        assert (self._rate_limited_run("ready")
                == self._rate_limited_run("full"))

    @staticmethod
    def _rate_limited_run(scan):
        sim = Simulator()
        engine = CoreEngine(sim, Core(sim, name="ce"), batch_size=4,
                            scan=scan)
        nsm_id, nsm_dev = engine.register_nsm("nsm0", queue_sets=1)
        vm_id, vm_dev = engine.register_vm("vm0", queue_sets=1)
        engine.assign_vm(vm_id, nsm_id)
        engine.set_ops_limit(vm_id, 2000.0)  # burst 20: forces stalls
        control_ring, _ = vm_dev.produce_rings(vm_dev.queue_sets[0])
        for index in range(60):
            control_ring.push(Nqe(NqeOp.SETSOCKOPT, vm_id, 0, 1),
                              owner="guest")
        vm_dev.ring_doorbell()
        sim.run(until=0.5)
        stats = engine.stats()
        return (sim.now, sim.events_processed, engine.nqes_switched,
                engine.batches, stats["rate_limited_stalls"],
                _strip_sched(stats))


class TestVectorizedIdenticalToScalar:
    """The vectorized datapath (slab rings, scratch drains, zero-copy
    hand-off, batched delivery) is a wall-clock optimization only: the
    simulated timeline must be bit-identical to ``vectorized=False``."""

    def test_multiplexing_fingerprint(self):
        fast = _mux_workload("ready", n_vms=40, active_vms=4,
                             nqes_per_active=50, vectorized=True)
        scalar = _mux_workload("ready", n_vms=40, active_vms=4,
                               nqes_per_active=50, vectorized=False)
        scalar_full = _mux_workload("full", n_vms=40, active_vms=4,
                                    nqes_per_active=50, vectorized=False)
        assert fast == scalar == scalar_full

    def test_transfer_fingerprint_matches(self):
        """Full stack: GuestLib -> CE -> NSM TCP -> network and back,
        exercising the slab SendBuffer, chunked ReceiveBuffer, and the
        memoryview hand-off end to end."""
        from tests.test_determinism import run_transfer_fingerprint

        with vectorized_mode(True):
            fast = run_transfer_fingerprint()
        with vectorized_mode(False):
            scalar = run_transfer_fingerprint()
        assert fast == scalar

    @pytest.mark.parametrize("exp_id,kwargs", [
        ("fig8", {}),
        ("table5", {"requests": 200, "concurrency": 40}),
    ])
    def test_experiment_rows_match(self, exp_id, kwargs):
        with vectorized_mode(True):
            fast = _experiment_outputs(exp_id, **kwargs)
        with vectorized_mode(False):
            scalar = _experiment_outputs(exp_id, **kwargs)
        assert fast == scalar


class TestZeroAllocSwitching:
    """Perf smoke: steady-state vectorized switching performs zero list
    allocations — every drain goes through ``drain_into`` on a reused
    scratch, never ``pop_batch`` (which is what ``list_allocs`` counts)."""

    def test_steady_state_switching_allocates_no_lists(self):
        sim = Simulator()
        engine = CoreEngine(sim, Core(sim, name="ce"), batch_size=8,
                            scan="ready", vectorized=True)
        nsm_id, nsm_dev = engine.register_nsm("nsm0", queue_sets=2)
        devices = [nsm_dev]
        for i in range(4):
            vm_id, vm_dev = engine.register_vm(f"vm{i}", queue_sets=1)
            engine.assign_vm(vm_id, nsm_id)
            devices.append(vm_dev)
            ring, _ = vm_dev.produce_rings(vm_dev.queue_sets[0])
            for _ in range(16):
                ring.push(Nqe(NqeOp.SETSOCKOPT, vm_id, 0, 1), owner="guest")
            vm_dev.ring_doorbell()

        def responder():
            owner = object()
            scratch = []
            while True:
                n = nsm_dev.drain_consume_into(scratch, 64, owner)
                if not n:
                    yield nsm_dev.wait_for_inbound()
                    continue
                for i in range(n):
                    nqe = scratch[i]
                    scratch[i] = None
                    qs = nsm_dev.queue_set_for(nqe.queue_set_id)
                    control, _ = nsm_dev.produce_rings(qs)
                    control.push(nqe.response(NqeOp.OP_RESULT), owner=owner)
                nsm_dev.ring_doorbell()

        def drainer(dev):
            owner = object()
            scratch = []
            while True:
                if not dev.drain_consume_into(scratch, 64, owner):
                    yield dev.wait_for_inbound()

        sim.process(responder())
        for dev in devices[1:]:
            sim.process(drainer(dev))
        sim.run(until=0.05)

        assert engine.nqes_switched == 4 * 16 * 2  # requests + responses
        allocs = sum(ring.list_allocs
                     for dev in devices for qs in dev.queue_sets
                     for ring in (qs.job, qs.send, qs.completion, qs.receive))
        assert allocs == 0


class TestStaleWakeupFix:
    """The doorbell-vs-stall-timeout race: the losing timeout must be
    disarmed instead of lingering in the heap as a no-op wakeup."""

    def _build(self, scan):
        sim = Simulator()
        engine = CoreEngine(sim, Core(sim, name="ce"), batch_size=4,
                            scan=scan)
        nsm_id, nsm_dev = engine.register_nsm("nsm0", queue_sets=1)
        limited_id, limited_dev = engine.register_vm("vm-limited",
                                                     queue_sets=1)
        other_id, other_dev = engine.register_vm("vm-other", queue_sets=1)
        engine.assign_vm(limited_id, nsm_id)
        engine.assign_vm(other_id, nsm_id)
        # burst = 1 op, refill every 10ms: the second NQE stalls ~10ms.
        engine.set_ops_limit(limited_id, 100.0)
        return sim, engine, (limited_id, limited_dev), (other_id, other_dev)

    @pytest.mark.parametrize("scan", ["ready", "full"])
    def test_doorbell_win_cancels_stall_timeout(self, scan):
        sim, engine, (lim_id, lim_dev), (oth_id, oth_dev) = self._build(scan)
        ring, _ = lim_dev.produce_rings(lim_dev.queue_sets[0])
        for _ in range(2):
            ring.push(Nqe(NqeOp.SETSOCKOPT, lim_id, 0, 1), owner="guest")
        lim_dev.ring_doorbell()

        def other_producer():
            # Fires mid-stall (stall deadline is ~10ms out).
            yield sim.timeout(0.002)
            other_ring, _ = oth_dev.produce_rings(oth_dev.queue_sets[0])
            other_ring.push(Nqe(NqeOp.SETSOCKOPT, oth_id, 0, 1),
                            owner="guest")
            oth_dev.ring_doorbell()

        sim.process(other_producer())
        sim.run(until=0.05)
        assert engine.rate_limited_stalls > 0
        assert engine.stale_wakeups > 0
        assert sim.events_cancelled >= engine.stale_wakeups
        assert engine.stats()["sched.stale_wakeups"] == engine.stale_wakeups


class TestTimeoutCancel:
    def test_cancelled_timeout_keeps_timeline(self):
        sim = Simulator()
        first = sim.timeout(1.0)
        sim.timeout(2.0)
        fired = []
        first.callbacks.append(lambda e: fired.append(e))
        first.cancel()
        sim.run()
        assert first.cancelled
        assert fired == []
        assert sim.now == 2.0  # the cancelled entry still advances time
        assert sim.events_cancelled == 1
        assert sim.events_processed == 1

    def test_cancel_after_processed_raises(self):
        sim = Simulator()
        timeout = sim.timeout(0.1)
        sim.run()
        assert timeout.processed
        with pytest.raises(SimulationError):
            timeout.cancel()


class TestNqePool:
    def test_release_then_acquire_reuses(self):
        pool = NqePool()
        nqe = pool.acquire(NqeOp.SEND, 1, 0, 7, size=64,
                           aux={"x": 1}, created_at=2.5)
        nqe.trace = {"stamp": True}
        pool.release(nqe)
        recycled = pool.acquire(NqeOp.SOCKET, 2, 1, 9)
        assert recycled is nqe
        # Fully reinitialized: no stale payload, aux, trace, or token.
        assert recycled.op is NqeOp.SOCKET
        assert recycled.vm_tuple == (2, 1, 9)
        assert recycled.size == 0 and recycled.aux is None
        assert recycled.trace is None
        assert pool.stats() == {"allocated": 1, "reused": 1,
                                "released": 1, "free": 0}

    def test_free_list_is_bounded(self):
        pool = NqePool(max_free=2)
        nqes = [pool.acquire(NqeOp.SEND, 1, 0, i) for i in range(4)]
        for nqe in nqes:
            pool.release(nqe)
        assert pool.stats()["free"] == 2
        assert pool.stats()["released"] == 2

    def test_datapath_recycles_through_global_pool(self):
        before = NQE_POOL.reused + NQE_POOL.allocated
        _mux_workload("ready", n_vms=2, active_vms=2, nqes_per_active=30)
        after = NQE_POOL.reused + NQE_POOL.allocated
        assert after > before
        assert NQE_POOL.reused > 0


class TestReadySetBehaviour:
    def test_kick_without_device_marks_everything(self):
        sim = Simulator()
        engine = CoreEngine(sim, Core(sim, name="ce"), scan="ready")
        nsm_id, _ = engine.register_nsm("nsm0", queue_sets=1)
        vm_id, vm_dev = engine.register_vm("vm0", queue_sets=1)
        engine.assign_vm(vm_id, nsm_id)
        ring, _ = vm_dev.produce_rings(vm_dev.queue_sets[0])
        ring.push(Nqe(NqeOp.SETSOCKOPT, vm_id, 0, 1), owner="guest")
        engine.kick()  # device=None: conservative mark-all
        sim.run(until=0.01)
        assert engine.nqes_switched == 1

    def test_full_scan_mode_still_available(self):
        sim = Simulator()
        engine = CoreEngine(sim, Core(sim, name="ce"), scan="full")
        assert engine.stats()["sched.mode"] == "full"

    def test_unknown_scan_mode_rejected(self):
        from repro.errors import ConfigurationError

        sim = Simulator()
        with pytest.raises(ConfigurationError):
            CoreEngine(sim, Core(sim, name="ce"), scan="sometimes")
