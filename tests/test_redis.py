"""Tests for the redis-like application over every architecture/stack —
the §6.3 claim: protocol-speaking apps run unmodified on any NSM."""

import pytest

from repro.apps.redis import RedisClient, RedisServer, _FrameParser, \
    encode_command
from repro.baseline.host import BaselineHost
from repro.core.host import NetKernelHost
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


class TestFraming:
    def test_roundtrip(self):
        parser = _FrameParser()
        parser.feed(encode_command(b"SET", b"k", b"v" * 100))
        assert parser.next_frame() == [b"SET", b"k", b"v" * 100]
        assert parser.next_frame() is None

    def test_partial_then_complete(self):
        frame = encode_command(b"GET", b"key")
        parser = _FrameParser()
        parser.feed(frame[:5])
        assert parser.next_frame() is None
        parser.feed(frame[5:])
        assert parser.next_frame() == [b"GET", b"key"]

    def test_pipelined_frames(self):
        parser = _FrameParser()
        parser.feed(encode_command(b"PING") + encode_command(b"GET", b"x"))
        assert parser.next_frame() == [b"PING"]
        assert parser.next_frame() == [b"GET", b"x"]

    def test_binary_safe_values(self):
        payload = bytes(range(256))
        parser = _FrameParser()
        parser.feed(encode_command(b"SET", b"bin", payload))
        assert parser.next_frame() == [b"SET", b"bin", payload]


def run_session(env_builder, stack="kernel"):
    sim = Simulator()
    server_vm, client_vm, api_s, api_c, addr = env_builder(sim, stack)
    server = RedisServer(sim, api_s, port=6379, cores=server_vm.cores)
    server.start(server_vm)
    transcript = {}

    def session():
        yield sim.timeout(0.002)
        client = RedisClient(sim, api_c, addr)
        yield from client.connect()
        transcript["ping"] = yield from client.ping()
        transcript["set"] = yield from client.set(b"answer", b"42")
        transcript["get"] = yield from client.get(b"answer")
        transcript["missing"] = yield from client.get(b"nope")
        transcript["del"] = yield from client.delete(b"answer")
        transcript["get2"] = yield from client.get(b"answer")
        yield from client.close()

    client_vm.spawn(session())
    sim.run(until=10.0)
    return transcript, server


def netkernel_env(sim, stack):
    host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                      default_delay_sec=usec(25)))
    nsm_s = host.add_nsm("nsmS", vcpus=1, stack=stack)
    nsm_c = host.add_nsm("nsmC", vcpus=1, stack=stack)
    server_vm = host.add_vm("srv", vcpus=1, nsm=nsm_s)
    client_vm = host.add_vm("cli", vcpus=1, nsm=nsm_c)
    return (server_vm, client_vm, host.socket_api(server_vm),
            host.socket_api(client_vm), ("nsmS", 6379))


def baseline_env(sim, stack):
    host = BaselineHost(sim, Network(sim, default_rate_bps=gbps(10),
                                     default_delay_sec=usec(25)))
    server_vm = host.add_vm("srv", vcpus=1, stack=stack)
    client_vm = host.add_vm("cli", vcpus=1, stack=stack)
    return (server_vm, client_vm, host.socket_api(server_vm),
            host.socket_api(client_vm), ("srv", 6379))


EXPECTED = {
    "ping": b"+PONG",
    "set": b"+OK",
    "get": b"42",
    "missing": b"$-1",
    "del": b":1",
    "get2": b"$-1",
}


class TestRedisEverywhere:
    def test_netkernel_kernel_nsm(self):
        transcript, server = run_session(netkernel_env, "kernel")
        assert transcript == EXPECTED
        assert server.commands == 6

    def test_netkernel_mtcp_nsm(self):
        """§6.3: the same unmodified redis runs over mTCP."""
        transcript, _ = run_session(netkernel_env, "mtcp")
        assert transcript == EXPECTED

    def test_baseline(self):
        transcript, _ = run_session(baseline_env, "kernel")
        assert transcript == EXPECTED

    def test_large_values_survive_segmentation(self):
        sim = Simulator()
        (server_vm, client_vm, api_s, api_c,
         addr) = netkernel_env(sim, "kernel")
        server = RedisServer(sim, api_s, cores=server_vm.cores)
        server.start(server_vm)
        result = {}
        big = bytes(i % 251 for i in range(200_000))

        def session():
            yield sim.timeout(0.002)
            client = RedisClient(sim, api_c, addr)
            yield from client.connect()
            yield from client.set(b"blob", big)
            result["blob"] = yield from client.get(b"blob")
            yield from client.close()

        client_vm.spawn(session())
        sim.run(until=20.0)
        assert result["blob"] == big
