"""Live NSM migration (§8): zero-reset stack upgrade between NSMs.

Covers the acceptance bar from the issue — ≥100 established connections
move between two NSMs with nothing surfaced to the guests, payloads
intact, a bounded blackout, and bit-identical seeded replays — plus the
rejection cases, listener migration with packet forwarding, the obs
hooks, and the satellite property tests: resource balance holds after a
migration under every named fault plan.
"""

import pytest

from repro.cli import main
from repro.core.host import NetKernelHost
from repro.errors import ConfigurationError
from repro.faults.migration import run_migration
from repro.faults.plan import PLAN_NAMES
from repro.net.fabric import Network
from repro.sim import Simulator

#: Plans mild enough that every stream must ride through the overlapped
#: migration without a single guest-visible reset.  nsm-crash and
#: nsm-stall intentionally kill/quarantine the source NSM (failover's
#: ECONNRESET path is correct there); ring-drop loses CLOSE acks, which
#: surface as bounded timeouts.
ZERO_RESET_PLANS = ("doorbell-loss", "hugepage-squeeze",
                    "delayed-completion")


class TestMigrationWorkload:
    def test_hundred_streams_migrate_with_zero_resets(self):
        result = run_migration(seed=0, streams=100, duration=0.12)
        record = result["migration"]
        counters = result["counters"]
        assert record is not None, result["migration_error"]
        assert record["sockets_moved"] >= 100
        assert record["entries_rebound"] >= 100
        assert counters["connects"] == 100
        assert counters["resets"] == 0
        assert counters["timeouts"] == 0
        assert counters["mismatches"] == 0
        assert counters["echoes_ok"] > 0
        assert counters["bytes_echoed"] == counters["echoes_ok"] * 512
        assert counters["closed_clean"] == 100
        assert result["leaks"] == []
        assert result["client_table_entries"] == 0

    def test_blackout_is_bounded_and_linear_in_connections(self):
        result = run_migration(seed=0, streams=100, duration=0.12,
                               blackout_base_sec=50e-6,
                               blackout_per_conn_sec=1e-6)
        record = result["migration"]
        assert record["blackout_sec"] == pytest.approx(
            50e-6 + 1e-6 * record["sockets_moved"])
        assert record["resumed"] > record["blackout_started"]
        assert record["total_sec"] >= record["blackout_sec"]

    def test_tcb_state_travels_in_the_record(self):
        result = run_migration(seed=2, streams=3, duration=0.08)
        record = result["migration"]
        assert record["tcb_states"] == ["established"] * 3

    def test_seeded_replay_is_bit_identical(self):
        first = run_migration(seed=7, streams=12, duration=0.1)
        second = run_migration(seed=7, streams=12, duration=0.1)
        assert (first["switch_fingerprint"]
                == second["switch_fingerprint"])
        assert first["leaks"] == [] and second["leaks"] == []

    def test_different_seeds_change_payloads_not_correctness(self):
        first = run_migration(seed=1, streams=4, duration=0.08)
        second = run_migration(seed=2, streams=4, duration=0.08)
        for result in (first, second):
            assert result["counters"]["mismatches"] == 0
            assert result["counters"]["resets"] == 0
        # Payload patterns differ by seed, so the byte counters agree but
        # the timelines need not; correctness, not identity, is asserted.


class TestMigrationUnderFaults:
    @pytest.mark.parametrize("plan_name", PLAN_NAMES)
    def test_resources_balance_under_every_fault_kind(self, plan_name):
        """NQE pool, hugepage bytes, and the client's connection-table
        entries return to their pre-migration values whatever fault
        overlaps the migration window."""
        result = run_migration(seed=3, streams=6, duration=0.12,
                               migrate_at=0.042, plan_name=plan_name)
        assert result["leaks"] == []
        assert result["counters"]["mismatches"] == 0
        if plan_name == "ring-drop":
            # Dropped CLOSE acks leave entries a real close would have
            # removed; the guest saw a bounded timeout for each.
            assert (result["client_table_entries"]
                    <= result["counters"]["timeouts"] * 2)
        else:
            assert result["client_table_entries"] == 0

    @pytest.mark.parametrize("plan_name", ZERO_RESET_PLANS)
    def test_mild_faults_stay_zero_reset(self, plan_name):
        result = run_migration(seed=3, streams=6, duration=0.12,
                               migrate_at=0.042, plan_name=plan_name)
        assert result["counters"]["resets"] == 0
        assert result["migration"] is not None

    def test_crashed_source_aborts_cleanly(self):
        """nsm-crash kills the source before the export: the migration
        must refuse (not wedge), and failover resets the streams."""
        result = run_migration(seed=3, streams=6, duration=0.12,
                               migrate_at=0.042, plan_name="nsm-crash")
        assert result["migration"] is None
        assert "crashed" in result["migration_error"]
        assert result["counters"]["resets"] == 6
        assert result["leaks"] == []


def _two_nsm_host():
    sim = Simulator()
    host = NetKernelHost(sim, Network(sim))
    nsm_a = host.add_nsm("nsm-a", vcpus=1, stack="kernel")
    nsm_b = host.add_nsm("nsm-b", vcpus=1, stack="kernel")
    return sim, host, nsm_a, nsm_b


class TestMigrationApi:
    def test_same_nsm_rejected(self):
        sim, host, nsm_a, _ = _two_nsm_host()
        vm = host.add_vm("vm", vcpus=1, nsm=nsm_a)
        with pytest.raises(ConfigurationError):
            next(host.migrate_vm(vm, nsm_a))

    def test_unknown_vm_rejected(self):
        sim, host, nsm_a, nsm_b = _two_nsm_host()
        with pytest.raises(ConfigurationError):
            next(host.coreengine.migrate_vm(
                999, nsm_b.nsm_id, nsm_a.servicelib, nsm_b.servicelib))

    def test_concurrent_migration_rejected(self):
        sim, host, nsm_a, nsm_b = _two_nsm_host()
        vm = host.add_vm("vm", vcpus=1, nsm=nsm_a)
        errors = []

        def second():
            yield sim.timeout(1e-6)
            try:
                yield from host.migrate_vm(vm, nsm_b)
            except ConfigurationError as error:
                errors.append(str(error))

        sim.process(host.migrate_vm(vm, nsm_b))
        sim.process(second())
        sim.run(until=0.01)
        assert errors and "already migrating" in errors[0]

    def test_listener_migration_forwards_and_serves_new_connections(self):
        """Migrating a server VM moves its listener; packets addressed to
        the old NSM's fabric name — including fresh SYNs — are forwarded
        to the new engine, so established conns AND new connects keep
        working across the move."""
        port = 7100
        sim, host, nsm_a, nsm_b = _two_nsm_host()
        nsm_c = host.add_nsm("nsm-srv", vcpus=1, stack="kernel")
        server_vm = host.add_vm("server", vcpus=1, nsm=nsm_a)
        client_vm = host.add_vm("client", vcpus=1, nsm=nsm_c)
        host.enable_observability()
        server_api = host.socket_api(server_vm)
        client_api = host.socket_api(client_vm)
        done = {}

        def server():
            listener = yield from server_api.socket()
            yield from server_api.bind(listener, port)
            yield from server_api.listen(listener, backlog=16)
            while True:
                conn = yield from server_api.accept(listener)
                server_vm.spawn(echo(conn))

        def echo(conn):
            while True:
                data = yield from server_api.recv(conn, 4096)
                if not data:
                    return
                yield from server_api.send(conn, data)

        def client():
            sock = yield from client_api.socket()
            yield from client_api.connect(sock, ("nsm-a", port))
            yield from client_api.send(sock, b"before")
            done["before"] = yield from client_api.recv(sock, 64)
            yield sim.timeout(30e-3)  # ride through the migration
            yield from client_api.send(sock, b"after")
            done["after"] = yield from client_api.recv(sock, 64)
            yield from client_api.close(sock)
            fresh = yield from client_api.socket()
            yield from client_api.connect(fresh, ("nsm-a", port))
            yield from client_api.send(fresh, b"fresh")
            done["fresh"] = yield from client_api.recv(fresh, 64)
            yield from client_api.close(fresh)

        def migrate():
            done["record"] = yield from host.migrate_vm(server_vm, nsm_b)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.call_at(10e-3, lambda: sim.process(migrate()))
        sim.run(until=0.1)

        assert done["before"] == b"before"
        assert done["after"] == b"after"
        assert done["fresh"] == b"fresh"
        record = done["record"]
        assert record["sockets_moved"] >= 2  # listener + established conn
        assert host.coreengine.vm_to_nsm[server_vm.vm_id] == nsm_b.nsm_id
        # The old engine forwarded the post-migration segments.
        assert nsm_a.stack.engine.segments_forwarded > 0

        report = host.obs.report()
        migration = report["migration"]
        assert migration["migration.completed"] == 1
        assert migration["migration.sockets_moved"] == record["sockets_moved"]
        assert migration["migration.blackout_sec"]["count"] == 1
        assert report["coreengine"]["vms_migrated"] == 1

    def test_experiment_registry_runs_fig_migration(self):
        from repro.experiments import run_experiment

        result = run_experiment("fig-migration", duration=0.08,
                                stream_counts=(1, 4))
        assert result.exp_id == "fig-migration"
        assert [row[0] for row in result.rows] == [1, 4]
        for row in result.rows:
            streams, blackout_ms, moved, _parked, echoes, resets, touts = row
            assert moved >= streams
            assert blackout_ms is not None and blackout_ms > 0
            assert echoes > 0 and resets == 0 and touts == 0
        assert "zero resets" in result.notes


class TestMigrateCli:
    def test_migrate_verify_exit_zero(self, capsys):
        code = main(["migrate", "--seed", "5", "--streams", "4",
                     "--duration", "0.08", "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify OK" in out

    def test_migrate_json_output(self, capsys):
        import json

        code = main(["migrate", "--seed", "5", "--streams", "4",
                     "--duration", "0.08", "--json"])
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True
        assert envelope["kind"] == "migrate"
        assert envelope["error"] is None
        payload = envelope["data"]["result"]
        assert payload["migration"]["sockets_moved"] == 4
        assert payload["counters"]["resets"] == 0
        assert payload["leaks"] == []
        assert len(payload["switch_fingerprint"]) == 64
