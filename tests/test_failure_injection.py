"""Failure injection: packet loss, VM teardown, and queue overflow
through the full NetKernel path."""

import pytest

from repro.core.host import NetKernelHost
from repro.errors import SocketError
from repro.net.fabric import Network
from repro.net.link import Link
from repro.sim import Simulator
from repro.stack.tcp.engine import TcpEngine
from repro.units import gbps, mbps, usec


class TestLossyFabric:
    def test_transfer_survives_loss_through_netkernel(self):
        """2% random loss on the fabric: TCP inside the NSM recovers and
        the application bytes arrive intact."""
        sim = Simulator()
        network = Network(sim, default_rate_bps=mbps(200),
                          default_delay_sec=usec(50))
        network.set_bottleneck(Link(sim, mbps(200), delay_sec=usec(50),
                                    loss_rate=0.02, seed=17))
        host = NetKernelHost(sim, network)
        nsm_s = host.add_nsm("nsmS", vcpus=1, stack="kernel")
        nsm_c = host.add_nsm("nsmC", vcpus=1, stack="kernel")
        server_vm = host.add_vm("srv", vcpus=1, nsm=nsm_s)
        client_vm = host.add_vm("cli", vcpus=1, nsm=nsm_c)
        api_s, api_c = host.socket_api(server_vm), host.socket_api(client_vm)
        payload = bytes(i % 249 for i in range(150_000))
        result = {}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            conn = yield from api_s.accept(listener)
            data = bytearray()
            while True:
                chunk = yield from api_s.recv(conn, 65536)
                if not chunk:
                    break
                data.extend(chunk)
            result["data"] = bytes(data)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_c.socket()
            yield from api_c.connect(sock, ("nsmS", 80))
            yield from api_c.send(sock, payload)
            yield from api_c.close(sock)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=60.0)
        assert result["data"] == payload
        retx = sum(c.retransmissions
                   for c in nsm_c.stack.engine.connections())
        # Connections may already be closed; check engine-wide counters.
        assert nsm_c.stack.engine.segments_sent > 0

    def test_udp_loss_is_silent(self):
        """Datagrams lost on the wire simply never arrive — no recovery,
        no error (UDP semantics)."""
        sim = Simulator()
        network = Network(sim, default_rate_bps=gbps(1),
                          default_delay_sec=usec(50))
        network.set_bottleneck(Link(sim, gbps(1), delay_sec=usec(50),
                                    loss_rate=0.5, seed=3))
        host = NetKernelHost(sim, network)
        nsm_s = host.add_nsm("nsmS", vcpus=1, stack="kernel")
        nsm_c = host.add_nsm("nsmC", vcpus=1, stack="kernel")
        server_vm = host.add_vm("srv", vcpus=1, nsm=nsm_s)
        client_vm = host.add_vm("cli", vcpus=1, nsm=nsm_c)
        api_s, api_c = host.socket_api(server_vm), host.socket_api(client_vm)
        got = []

        def server():
            sock = yield from api_s.socket(sock_type="dgram")
            yield from api_s.bind(sock, 5353)
            while True:
                data, _src = yield from api_s.recvfrom(sock, 1024)
                got.append(data)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_c.socket(sock_type="dgram")
            for index in range(40):
                yield from api_c.sendto(sock, bytes([index]) * 32,
                                        ("nsmS", 5353))
                yield sim.timeout(0.0005)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=5.0)
        assert 0 < len(got) < 40  # some lost, some delivered, no crash


class TestTeardown:
    def test_remove_vm_releases_resources(self):
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                          default_delay_sec=usec(25)))
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        vm = host.add_vm("vm1", vcpus=1, nsm=nsm)
        api = host.socket_api(vm)

        def app():
            sock = yield from api.socket()
            yield from api.bind(sock, 80)
            yield from api.listen(sock)

        vm.spawn(app())
        sim.run(until=0.1)
        assert len(host.coreengine.table) == 1
        host.remove_vm(vm)
        assert len(host.coreengine.table) == 0
        assert "vm1" not in host.vms

    def test_peer_vm_disappearing_mid_connection(self):
        """Kill the client VM mid-transfer: the server's connection must
        eventually error or close rather than wedge the simulation."""
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                          default_delay_sec=usec(25)))
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        server_vm = host.add_vm("srv", vcpus=1, nsm=nsm)
        client_vm = host.add_vm("cli", vcpus=1, nsm=nsm)
        api_s = host.socket_api(server_vm)
        api_c = host.socket_api(client_vm)
        state = {}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            conn = yield from api_s.accept(listener)
            state["accepted"] = True
            try:
                while True:
                    data = yield from api_s.recv(conn, 65536)
                    if not data:
                        state["eof"] = True
                        break
            except SocketError as error:
                state["errno"] = error.errno_name

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_c.socket()
            yield from api_c.connect(sock, ("nsm0", 80))
            yield from api_c.send(sock, b"x" * 1000)
            yield sim.timeout(0.01)
            host.remove_vm(client_vm)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=5.0)
        assert state.get("accepted")
        # The server saw either a clean EOF (if close raced ahead) or an
        # error; the run itself completed without deadlock.


class TestRingOverflow:
    def test_tiny_rings_still_deliver_correctly(self):
        """4-slot rings force constant CoreEngine backpressure; the
        transfer must still complete byte-perfect."""
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                          default_delay_sec=usec(25)))
        host.coreengine.ring_slots = 4
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        server_vm = host.add_vm("srv", vcpus=1, nsm=nsm)
        client_vm = host.add_vm("cli", vcpus=1, nsm=nsm)
        api_s, api_c = host.socket_api(server_vm), host.socket_api(client_vm)
        payload = bytes(i % 251 for i in range(100_000))
        result = {}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            conn = yield from api_s.accept(listener)
            data = bytearray()
            while True:
                chunk = yield from api_s.recv(conn, 65536)
                if not chunk:
                    break
                data.extend(chunk)
            result["data"] = bytes(data)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_c.socket()
            yield from api_c.connect(sock, ("nsm0", 80))
            yield from api_c.send(sock, payload)
            yield from api_c.close(sock)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=30.0)
        assert result["data"] == payload
