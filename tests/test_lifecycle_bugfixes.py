"""Close/drain lifecycle bugfix batch (PR 4 satellites).

1. ``close()``/``shutdown()`` must withdraw their drain waiter from
   ``sock._writable_waiters`` when the bounded wait times out — a stale
   event there would eat a later wake-up meant for a live caller.
2. Closing a listening socket with un-accepted backlog children must
   free the NSM-side stack connections and ``_SocketContext``s.
3. ``CoreEngine._fail_fast_nqe`` must not rewrite already-completed
   CLOSE/SHUTDOWN results to -ECONNRESET: the op succeeded before the
   NSM died, and the socket is terminal either way.
"""

import pytest

from repro.core.host import NetKernelHost
from repro.core.nqe import NQE_POOL, NqeOp, RESULT_ERRNO
from repro.errors import TimedOutError
from repro.net.fabric import Network
from repro.sim import Simulator

PORT = 7200


def _echo_host(op_timeout=None):
    """Two NSMs, an accepting echo server on nsm-a, a client on nsm-b."""
    sim = Simulator()
    host = NetKernelHost(sim, Network(sim))
    nsm_a = host.add_nsm("nsm-a", vcpus=1, stack="kernel")
    nsm_b = host.add_nsm("nsm-b", vcpus=1, stack="kernel")
    server_vm = host.add_vm("server", vcpus=1, nsm=nsm_a)
    client_vm = host.add_vm("client", vcpus=1, nsm=nsm_b,
                            op_timeout=op_timeout, max_op_retries=0)
    return sim, host, nsm_a, nsm_b, server_vm, client_vm


def _accepting_server(api, vm):
    listener = yield from api.socket()
    yield from api.bind(listener, PORT)
    yield from api.listen(listener, backlog=16)
    while True:
        conn = yield from api.accept(listener)
        vm.spawn(_echo(api, conn))


def _echo(api, conn):
    while True:
        data = yield from api.recv(conn, 4096)
        if not data:
            return
        yield from api.send(conn, data)


class TestDrainWaiterWithdrawal:
    """Satellite 1: timed-out drain waits must not leave waiters behind."""

    def _connected_socket(self, op_timeout):
        sim, host, _, _, server_vm, client_vm = _echo_host(op_timeout)
        server_api = host.socket_api(server_vm)
        client_api = host.socket_api(client_vm)
        server_vm.spawn(_accepting_server(server_api, server_vm))
        state = {}

        def connect():
            sock = yield from client_api.socket()
            yield from client_api.connect(sock, ("nsm-a", PORT))
            state["sock"] = sock

        client_vm.spawn(connect())
        sim.run(until=0.02)
        assert "sock" in state
        return sim, client_api, state["sock"]

    def test_close_timeout_withdraws_waiter(self):
        sim, api, sock = self._connected_socket(op_timeout=2e-3)
        # Un-credited pipelined sends that will never drain: the close
        # drain wait must expire, withdraw its waiter, and proceed.
        sock.tx_inflight = 1 << 20
        done = {}

        def close_it():
            done["rc"] = yield from api.close(sock)

        sim.process(close_it())
        sim.run(until=0.05)
        assert done["rc"] == 0
        assert sock.state == "closed"
        assert sock._writable_waiters == []

    def test_shutdown_timeout_withdraws_waiter_and_raises(self):
        sim, api, sock = self._connected_socket(op_timeout=2e-3)
        sock.tx_inflight = 1 << 20
        done = {}

        def shut_it():
            try:
                yield from api.shutdown(sock)
            except TimedOutError:
                done["timed_out"] = True

        sim.process(shut_it())
        sim.run(until=0.05)
        assert done.get("timed_out")
        assert sock._writable_waiters == []
        # The socket stays connected: shutdown never reached the NSM.
        assert sock.state == "connected"


class TestListenerBacklogReaping:
    """Satellite 2: closing a listener frees its un-attached children."""

    def test_close_with_unaccepted_backlog_leaks_nothing(self):
        """GuestLib auto-attaches accepted children, so the un-attached
        window is normally microseconds.  A stalled poller widens it
        deterministically: the guest's CLOSE queues in the job ring ahead
        of the ACCEPT_ATTACHes while handshakes (stack callbacks, which a
        stall does not freeze) keep minting backlog children — exactly
        the leak scenario."""
        sim, host, nsm_a, _, server_vm, client_vm = _echo_host()
        server_api = host.socket_api(server_vm)
        client_api = host.socket_api(client_vm)
        state = {}

        def lazy_server():
            listener = yield from server_api.socket()
            yield from server_api.bind(listener, PORT)
            yield from server_api.listen(listener, backlog=16)
            state["listener"] = listener
            # Never accepts: children pile up NSM-side with no VM twin.

        def close_listener():
            yield from server_api.close(state["listener"])
            state["closed"] = True

        def client():
            yield sim.timeout(11e-3)  # after the CLOSE is queued
            for _ in range(3):
                sock = yield from client_api.socket()
                yield from client_api.connect(sock, ("nsm-a", PORT))
                state.setdefault("socks", []).append(sock)

        server_vm.spawn(lazy_server())
        client_vm.spawn(client())
        sim.run(until=0.01)
        nsm_a.servicelib.stall(0.03)
        server_vm.spawn(close_listener())
        sim.run(until=0.03)

        lib = nsm_a.servicelib
        orphans = [ctx for ctx in lib._by_nsm_id.values()
                   if ctx.vm_tuple is None]
        assert len(orphans) == 3  # the leak precondition
        assert "closed" not in state  # CLOSE still parked in the ring

        sim.run(until=0.08)  # stall over: CLOSE reaps, ATTACHes no-op

        assert state.get("closed")
        # Every NSM-side context is gone: listener, attached children
        # (there are none), and the un-attached backlog.
        assert lib._by_nsm_id == {}
        engine = nsm_a.stack.engine
        assert engine._listeners == {}
        assert all(conn.local_port != PORT
                   for conn in engine._conns.values())


class TestCloseResultSurvivesQuarantine:
    """Satellite 3: fail-fast must not rewrite completed CLOSE results."""

    def test_close_result_keeps_success_connect_result_fails(self):
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim))
        nsm = host.add_nsm("nsm-a", vcpus=1, stack="kernel")
        vm = host.add_vm("vm", vcpus=1, nsm=nsm)
        ce = host.coreengine

        close_result = NQE_POOL.acquire(
            NqeOp.OP_RESULT, vm.vm_id, 0, 5, op_data=0, token=1,
            aux={"req_op": NqeOp.CLOSE}, created_at=0.0)
        shutdown_result = NQE_POOL.acquire(
            NqeOp.OP_RESULT, vm.vm_id, 0, 6, op_data=0, token=2,
            aux={"req_op": NqeOp.SHUTDOWN}, created_at=0.0)
        connect_result = NQE_POOL.acquire(
            NqeOp.OP_RESULT, vm.vm_id, 0, 7, op_data=0, token=3,
            aux={"req_op": NqeOp.CONNECT}, created_at=0.0)
        completion = ce.nsm_device(nsm.nsm_id).queue_sets[0].completion
        for nqe in (close_result, shutdown_result, connect_result):
            completion.push(nqe, owner=None)

        failed_fast_before = ce.nqes_failed_fast
        ce.quarantine_nsm(nsm.nsm_id, reason="test")

        delivered = {
            nqe.aux["req_op"]: nqe
            for qs in ce.vm_device(vm.vm_id).queue_sets
            for ring in (qs.completion, qs.receive)
            for nqe in ring.snapshot()
            if nqe is not None and nqe.op is NqeOp.OP_RESULT
        }
        assert delivered[NqeOp.CLOSE].op_data == 0
        assert delivered[NqeOp.SHUTDOWN].op_data == 0
        assert (delivered[NqeOp.CONNECT].op_data
                == -RESULT_ERRNO["ECONNRESET"])
        # Only the CONNECT result counted as failed-fast.
        assert ce.nqes_failed_fast == failed_fast_before + 1

        # Drain the crafted NQEs so the process-global pool balances.
        for qs in ce.vm_device(vm.vm_id).queue_sets:
            for ring in (qs.completion, qs.receive):
                while True:
                    batch = ring.pop_batch(64, owner=None)
                    if not batch:
                        break
                    for nqe in batch:
                        NQE_POOL.release(nqe)


class TestLifecycleRegressionsViaChaos:
    """The fixes hold under the canonical fault workload: doorbell loss
    plus clean closes produce no spurious ECONNRESET."""

    def test_doorbell_loss_run_stays_reset_free(self):
        from repro.faults.migration import run_migration

        result = run_migration(seed=6, streams=4, duration=0.12,
                               migrate_at=0.042,
                               plan_name="doorbell-loss")
        assert result["counters"]["resets"] == 0
        assert result["counters"]["closed_clean"] == 4
        assert result["leaks"] == []
