"""Sharded CoreEngine (PR 6 tentpole).

Covers the facade (placement, pinning, counter aggregation), cross-shard
handoff correctness on a real echo workload, and the determinism proofs:
a traffic-closed partition's per-shard fingerprint is bit-identical to a
standalone one-shard run, and PR 2's ready-vs-full scan identity holds
per shard under sharding.
"""

import pytest

from repro.core.host import NetKernelHost
from repro.core.sharding import ShardedCoreEngine
from repro.cpu.core import Core
from repro.errors import ConfigurationError
from repro.net.fabric import Network
from repro.perf.bench import _SHARD_FP_KEYS, _mux_workload, \
    _sharded_mux_workload
from repro.sim import Simulator

PORT = 7400


def _bare_cluster(n_shards=2):
    sim = Simulator()
    cores = [Core(sim, name=f"ce{i}") for i in range(n_shards)]
    return sim, ShardedCoreEngine(sim, cores)


class TestFacade:
    def test_needs_at_least_one_core(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ShardedCoreEngine(sim, [])

    def test_round_robin_placement_per_role(self):
        sim, engine = _bare_cluster(n_shards=3)
        vm_ids = [engine.register_vm(f"vm{i}", 1)[0] for i in range(6)]
        nsm_ids = [engine.register_nsm(f"nsm{i}", 1)[0] for i in range(3)]
        assert [engine.shard_of_vm(v) for v in vm_ids] == [0, 1, 2, 0, 1, 2]
        assert [engine.shard_of_nsm(n) for n in nsm_ids] == [0, 1, 2]

    def test_shard_pinning_and_range_check(self):
        sim, engine = _bare_cluster(n_shards=2)
        vm_id, _ = engine.register_vm("vm", 1, shard=1)
        nsm_id, _ = engine.register_nsm("nsm", 1, shard=1)
        assert engine.shard_of_vm(vm_id) == 1
        assert engine.shard_of_nsm(nsm_id) == 1
        with pytest.raises(ConfigurationError):
            engine.register_vm("oob", 1, shard=2)

    def test_control_plane_is_shared_across_shards(self):
        sim, engine = _bare_cluster(n_shards=3)
        first = engine.shards[0]
        for shard in engine.shards[1:]:
            assert shard.table is first.table
            assert shard.vm_to_nsm is first.vm_to_nsm
            assert shard._ids is first._ids

    def test_cross_shard_assignment_and_least_loaded(self):
        """assign_vm_auto must see NSMs on every shard, and exclude
        quarantined ones wherever they live."""
        sim, engine = _bare_cluster(n_shards=2)
        vm_id, _ = engine.register_vm("vm", 1, shard=0)
        nsm0, _ = engine.register_nsm("nsm0", 1, shard=0)
        nsm1, _ = engine.register_nsm("nsm1", 1, shard=1)
        engine.quarantine_nsm(nsm0, reason="test")
        assert engine.assign_vm_auto(vm_id) == nsm1
        assert sorted(engine.quarantined) == [nsm0]

    def test_summed_counters_and_stats(self):
        sim, engine = _bare_cluster(n_shards=2)
        engine.shards[0].nqes_switched = 3
        engine.shards[1].nqes_switched = 4
        engine.shards[0].handoffs_in = 2
        assert engine.nqes_switched == 7
        assert engine.handoffs_in == 2
        stats = engine.stats()
        assert stats["shards"] == 2
        assert stats["nqes_switched"] == 7
        assert "shard.0" in stats and "shard.1" in stats


class TestCrossShardHandoff:
    def test_echo_rtts_across_shards(self):
        """Client VM homed on shard 1, its serving NSM on shard 0: every
        request and response crosses the shard boundary via the handoff
        inbox, and the echo still completes byte-exact."""
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim), ce_shards=2)
        nsm0 = host.add_nsm("nsm0", vcpus=1, stack="kernel")  # shard 0
        server_vm = host.add_vm("server", nsm=nsm0)           # shard 0
        client_vm = host.add_vm("client", nsm=nsm0)           # shard 1
        engine = host.coreengine
        assert engine.shard_of_nsm(nsm0.nsm_id) == 0
        assert engine.shard_of_vm(server_vm.vm_id) == 0
        assert engine.shard_of_vm(client_vm.vm_id) == 1
        server_api = host.socket_api(server_vm)
        client_api = host.socket_api(client_vm)
        done = {}

        def server():
            lsock = yield from server_api.socket()
            yield from server_api.bind(lsock, PORT)
            yield from server_api.listen(lsock)
            conn = yield from server_api.accept(lsock)
            data = yield from server_api.recv(conn, 64)
            yield from server_api.send(conn, data)
            yield from server_api.close(conn)
            yield from server_api.close(lsock)

        def client():
            sock = yield from client_api.socket()
            yield from client_api.connect(sock, ("nsm0", PORT))
            yield from client_api.send(sock, b"across-shards")
            done["reply"] = yield from client_api.recv(sock, 64)
            yield from client_api.close(sock)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=0.05)

        assert done["reply"] == b"across-shards"
        # The client VM's NQEs were switched on shard 1 and delivered to
        # the NSM homed on shard 0 (and vice versa for responses).
        assert engine.handoffs_in > 0
        assert engine.handoffs_in == engine.handoffs_out
        assert len(engine.table) == 0

    def test_traffic_closed_partition_has_no_handoffs(self):
        out = _sharded_mux_workload("ready", n_shards=2, vms_per_shard=20,
                                    active_per_shard=2, nqes_per_active=6)
        assert out["handoffs"] == 0


class TestShardDeterminism:
    def test_per_shard_fingerprint_matches_one_shard_run(self):
        """The acceptance proof at test scale: each shard of a
        traffic-closed partition runs a timeline bit-identical to a
        standalone single-shard CoreEngine over the same population."""
        ref = _mux_workload("ready", n_vms=40, active_vms=4,
                            nqes_per_active=8)
        ref_fp = {key: ref[key] for key in _SHARD_FP_KEYS}
        out = _sharded_mux_workload("ready", n_shards=3, vms_per_shard=40,
                                    active_per_shard=4, nqes_per_active=8)
        assert out["handoffs"] == 0
        assert len(out["per_shard"]) == 3
        for fingerprint in out["per_shard"]:
            assert fingerprint == ref_fp
        assert out["sim_now"] == ref["sim_now"]

    def test_ready_vs_full_scan_identity_holds_per_shard(self):
        """PR 2's scheduler proof survives sharding: the ready-set scan
        and the full scan produce bit-identical per-shard timelines."""
        ready = _sharded_mux_workload("ready", n_shards=2, vms_per_shard=30,
                                      active_per_shard=3, nqes_per_active=6)
        full = _sharded_mux_workload("full", n_shards=2, vms_per_shard=30,
                                     active_per_shard=3, nqes_per_active=6)
        assert ready["per_shard"] == full["per_shard"]
        assert ready["sim_now"] == full["sim_now"]

    def test_seeded_replay_is_bit_identical(self):
        first = _sharded_mux_workload("ready", n_shards=2, vms_per_shard=20,
                                      active_per_shard=2, nqes_per_active=5)
        second = _sharded_mux_workload("ready", n_shards=2, vms_per_shard=20,
                                       active_per_shard=2, nqes_per_active=5)
        assert first == second
