"""Sharded CoreEngine (PR 6 tentpole).

Covers the facade (placement, pinning, counter aggregation), cross-shard
handoff correctness on a real echo workload, and the determinism proofs:
a traffic-closed partition's per-shard fingerprint is bit-identical to a
standalone one-shard run, and PR 2's ready-vs-full scan identity holds
per shard under sharding.
"""

import pytest

from repro.core.host import NetKernelHost
from repro.core.sharding import ShardedCoreEngine
from repro.cpu.core import Core
from repro.errors import ConfigurationError
from repro.net.fabric import Network
from repro.perf.bench import _SHARD_FP_KEYS, _mux_workload, \
    _sharded_mux_workload
from repro.sim import Simulator

PORT = 7400


def _bare_cluster(n_shards=2):
    sim = Simulator()
    cores = [Core(sim, name=f"ce{i}") for i in range(n_shards)]
    return sim, ShardedCoreEngine(sim, cores)


class TestFacade:
    def test_needs_at_least_one_core(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            ShardedCoreEngine(sim, [])

    def test_round_robin_placement_per_role(self):
        sim, engine = _bare_cluster(n_shards=3)
        vm_ids = [engine.register_vm(f"vm{i}", 1)[0] for i in range(6)]
        nsm_ids = [engine.register_nsm(f"nsm{i}", 1)[0] for i in range(3)]
        assert [engine.shard_of_vm(v) for v in vm_ids] == [0, 1, 2, 0, 1, 2]
        assert [engine.shard_of_nsm(n) for n in nsm_ids] == [0, 1, 2]

    def test_shard_pinning_and_range_check(self):
        sim, engine = _bare_cluster(n_shards=2)
        vm_id, _ = engine.register_vm("vm", 1, shard=1)
        nsm_id, _ = engine.register_nsm("nsm", 1, shard=1)
        assert engine.shard_of_vm(vm_id) == 1
        assert engine.shard_of_nsm(nsm_id) == 1
        with pytest.raises(ConfigurationError):
            engine.register_vm("oob", 1, shard=2)

    def test_control_plane_is_shared_across_shards(self):
        sim, engine = _bare_cluster(n_shards=3)
        first = engine.shards[0]
        for shard in engine.shards[1:]:
            assert shard.table is first.table
            assert shard.vm_to_nsm is first.vm_to_nsm
            assert shard._ids is first._ids

    def test_cross_shard_assignment_and_least_loaded(self):
        """assign_vm_auto must see NSMs on every shard, and exclude
        quarantined ones wherever they live."""
        sim, engine = _bare_cluster(n_shards=2)
        vm_id, _ = engine.register_vm("vm", 1, shard=0)
        nsm0, _ = engine.register_nsm("nsm0", 1, shard=0)
        nsm1, _ = engine.register_nsm("nsm1", 1, shard=1)
        engine.quarantine_nsm(nsm0, reason="test")
        assert engine.assign_vm_auto(vm_id) == nsm1
        assert sorted(engine.quarantined) == [nsm0]

    def test_summed_counters_and_stats(self):
        sim, engine = _bare_cluster(n_shards=2)
        engine.shards[0].nqes_switched = 3
        engine.shards[1].nqes_switched = 4
        engine.shards[0].handoffs_in = 2
        assert engine.nqes_switched == 7
        assert engine.handoffs_in == 2
        stats = engine.stats()
        assert stats["shards"] == 2
        assert stats["nqes_switched"] == 7
        assert "shard.0" in stats and "shard.1" in stats


class TestShardAwarePlacement:
    def test_auto_assign_prefers_home_shard(self):
        sim, engine = _bare_cluster(n_shards=2)
        nsm0, _ = engine.register_nsm("nsm0", 1, shard=0)
        nsm1, _ = engine.register_nsm("nsm1", 1, shard=1)
        # Load the shard-0 NSM well above the shard-1 one; a VM booting
        # on shard 0 must still co-home with it (traffic-closedness
        # beats cluster-wide least-loaded).
        engine.table.insert((99, 0, 1), nsm0, 0)
        engine.table.insert((99, 0, 2), nsm0, 0)
        vm0, _ = engine.register_vm("vm0", 1, shard=0)
        assert engine.assign_vm_auto(vm0) == nsm0
        vm1, _ = engine.register_vm("vm1", 1, shard=1)
        assert engine.assign_vm_auto(vm1) == nsm1

    def test_auto_assign_balances_within_home_shard(self):
        sim, engine = _bare_cluster(n_shards=2)
        nsm_a, _ = engine.register_nsm("a", 1, shard=0)
        nsm_b, _ = engine.register_nsm("b", 1, shard=0)
        engine.table.insert((99, 0, 1), nsm_a, 0)
        vm0, _ = engine.register_vm("vm0", 1, shard=0)
        assert engine.assign_vm_auto(vm0) == nsm_b

    def test_auto_assign_falls_back_across_shards(self):
        sim, engine = _bare_cluster(n_shards=2)
        nsm1, _ = engine.register_nsm("nsm1", 1, shard=1)
        vm0, _ = engine.register_vm("vm0", 1, shard=0)
        assert engine.assign_vm_auto(vm0) == nsm1

    def test_auto_assign_skips_quarantined_home_nsm(self):
        sim, engine = _bare_cluster(n_shards=2)
        nsm0, _ = engine.register_nsm("nsm0", 1, shard=0)
        nsm1, _ = engine.register_nsm("nsm1", 1, shard=1)
        engine.quarantine_nsm(nsm0, reason="test")
        vm0, _ = engine.register_vm("vm0", 1, shard=0)
        assert engine.assign_vm_auto(vm0) == nsm1

    def test_auto_assign_distrusts_stale_active_flag(self):
        """A quarantine recorded on the home shard disqualifies the NSM
        even while its registration still says active (half-applied
        quarantine state must not receive new VMs)."""
        sim, engine = _bare_cluster(n_shards=2)
        nsm0, _ = engine.register_nsm("nsm0", 1, shard=0)
        nsm1, _ = engine.register_nsm("nsm1", 1, shard=1)
        home = engine._nsm_home[nsm0]
        home.quarantined[nsm0] = "half-applied"
        assert home._nsms[nsm0].active
        vm0, _ = engine.register_vm("vm0", 1, shard=0)
        assert engine.assign_vm_auto(vm0) == nsm1

    def test_auto_assign_without_candidates_raises(self):
        sim, engine = _bare_cluster()
        vm0, _ = engine.register_vm("vm0", 1)
        with pytest.raises(ConfigurationError):
            engine.assign_vm_auto(vm0)


class TestDirectoryConsistency:
    def test_unknown_ids_raise_configuration_error(self):
        sim, engine = _bare_cluster()
        with pytest.raises(ConfigurationError):
            engine.shard_of_vm(999)
        with pytest.raises(ConfigurationError):
            engine.shard_of_nsm(999)

    def test_deregister_unknown_is_silent(self):
        sim, engine = _bare_cluster()
        engine.deregister(12345)  # guest-reachable op: must not raise

    def test_deregister_clears_directory(self):
        sim, engine = _bare_cluster()
        vm_id, _ = engine.register_vm("vm", 1, shard=1)
        engine.deregister(vm_id)
        with pytest.raises(ConfigurationError):
            engine.shard_of_vm(vm_id)

    def test_shard_side_deregister_keeps_directory_in_step(self):
        """A guest DEREGISTER lands on the home shard's engine, not the
        facade; the facade directory must still be cleaned."""
        sim, engine = _bare_cluster()
        vm_id, _ = engine.register_vm("vm", 1, shard=1)
        engine.shards[1].deregister(vm_id)
        with pytest.raises(ConfigurationError):
            engine.shard_of_vm(vm_id)
        assert vm_id not in engine._vm_home


class TestShardLoads:
    def test_shard_loads_reports_per_shard_occupancy(self):
        sim, engine = _bare_cluster(n_shards=3)
        nsm0, _ = engine.register_nsm("nsm0", 1, shard=0)
        engine.register_nsm("nsm1", 1, shard=1)
        vm, _ = engine.register_vm("vm", 1, shard=0)
        engine.table.insert((vm, 0, 1), nsm0, 0)
        loads = engine.shard_loads()
        assert loads[0] == {"nsms": 1, "vms": 1, "connections": 1}
        assert loads[1] == {"nsms": 1, "vms": 0, "connections": 0}
        assert loads[2] == {"nsms": 0, "vms": 0, "connections": 0}

    def test_emptiest_shard_prefers_fewest_nsms_then_connections(self):
        sim, engine = _bare_cluster(n_shards=3)
        engine.register_nsm("nsm0", 1, shard=0)
        assert engine.emptiest_shard() == 1  # no NSMs; index breaks tie
        engine.register_nsm("nsm1", 1, shard=1)
        engine.register_nsm("nsm2", 1, shard=2)
        nsm3, _ = engine.register_nsm("nsm3", 1, shard=0)
        engine.table.insert((50, 0, 1), nsm3, 0)
        # All shards have NSMs (shard 0: two); 1 and 2 tie on count and
        # connections, index decides.
        assert engine.emptiest_shard() == 1

    def test_quarantined_nsm_leaves_the_load_report(self):
        sim, engine = _bare_cluster(n_shards=2)
        nsm0, _ = engine.register_nsm("nsm0", 1, shard=0)
        engine.quarantine_nsm(nsm0, reason="test")
        assert engine.shard_loads()[0]["nsms"] == 0


class TestCrossShardHandoff:
    def test_echo_rtts_across_shards(self):
        """Client VM homed on shard 1, its serving NSM on shard 0: every
        request and response crosses the shard boundary via the handoff
        inbox, and the echo still completes byte-exact."""
        sim = Simulator()
        host = NetKernelHost(sim, Network(sim), ce_shards=2)
        nsm0 = host.add_nsm("nsm0", vcpus=1, stack="kernel")  # shard 0
        server_vm = host.add_vm("server", nsm=nsm0)           # shard 0
        client_vm = host.add_vm("client", nsm=nsm0)           # shard 1
        engine = host.coreengine
        assert engine.shard_of_nsm(nsm0.nsm_id) == 0
        assert engine.shard_of_vm(server_vm.vm_id) == 0
        assert engine.shard_of_vm(client_vm.vm_id) == 1
        server_api = host.socket_api(server_vm)
        client_api = host.socket_api(client_vm)
        done = {}

        def server():
            lsock = yield from server_api.socket()
            yield from server_api.bind(lsock, PORT)
            yield from server_api.listen(lsock)
            conn = yield from server_api.accept(lsock)
            data = yield from server_api.recv(conn, 64)
            yield from server_api.send(conn, data)
            yield from server_api.close(conn)
            yield from server_api.close(lsock)

        def client():
            sock = yield from client_api.socket()
            yield from client_api.connect(sock, ("nsm0", PORT))
            yield from client_api.send(sock, b"across-shards")
            done["reply"] = yield from client_api.recv(sock, 64)
            yield from client_api.close(sock)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.run(until=0.05)

        assert done["reply"] == b"across-shards"
        # The client VM's NQEs were switched on shard 1 and delivered to
        # the NSM homed on shard 0 (and vice versa for responses).
        assert engine.handoffs_in > 0
        assert engine.handoffs_in == engine.handoffs_out
        assert len(engine.table) == 0

    def test_traffic_closed_partition_has_no_handoffs(self):
        out = _sharded_mux_workload("ready", n_shards=2, vms_per_shard=20,
                                    active_per_shard=2, nqes_per_active=6)
        assert out["handoffs"] == 0


class TestShardDeterminism:
    def test_per_shard_fingerprint_matches_one_shard_run(self):
        """The acceptance proof at test scale: each shard of a
        traffic-closed partition runs a timeline bit-identical to a
        standalone single-shard CoreEngine over the same population."""
        ref = _mux_workload("ready", n_vms=40, active_vms=4,
                            nqes_per_active=8)
        ref_fp = {key: ref[key] for key in _SHARD_FP_KEYS}
        out = _sharded_mux_workload("ready", n_shards=3, vms_per_shard=40,
                                    active_per_shard=4, nqes_per_active=8)
        assert out["handoffs"] == 0
        assert len(out["per_shard"]) == 3
        for fingerprint in out["per_shard"]:
            assert fingerprint == ref_fp
        assert out["sim_now"] == ref["sim_now"]

    def test_ready_vs_full_scan_identity_holds_per_shard(self):
        """PR 2's scheduler proof survives sharding: the ready-set scan
        and the full scan produce bit-identical per-shard timelines."""
        ready = _sharded_mux_workload("ready", n_shards=2, vms_per_shard=30,
                                      active_per_shard=3, nqes_per_active=6)
        full = _sharded_mux_workload("full", n_shards=2, vms_per_shard=30,
                                     active_per_shard=3, nqes_per_active=6)
        assert ready["per_shard"] == full["per_shard"]
        assert ready["sim_now"] == full["sim_now"]

    def test_seeded_replay_is_bit_identical(self):
        first = _sharded_mux_workload("ready", n_shards=2, vms_per_shard=20,
                                      active_per_shard=2, nqes_per_active=5)
        second = _sharded_mux_workload("ready", n_shards=2, vms_per_shard=20,
                                       active_per_shard=2, nqes_per_active=5)
        assert first == second
