"""The control-plane REST door: same core as the CLI, over HTTP.

An in-process ThreadingHTTPServer on an ephemeral port exercises every
route, the CLI-vs-HTTP byte-identity acceptance bar, and ``GET /fleet``
reflecting a quarantined NSM while a chaos job runs in the worker
thread.
"""

import http.client
import json
import threading
import time

import pytest

from repro.cli import main as cli_main
from repro.ctrl.service import ControlPlane, make_server
from repro.ctrl.store import RunStore, canonical_json
from repro.ctrl.worker import JobWorker


@pytest.fixture()
def plane(tmp_path):
    return ControlPlane(store=RunStore(tmp_path / "runs"))


@pytest.fixture()
def server(plane):
    httpd = make_server(plane, port=0)
    thread = threading.Thread(target=httpd.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    thread.join(timeout=5)


def _request(httpd, method, path, body=None):
    host, port = httpd.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        conn.request(method, path, body=payload,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read().decode())
    finally:
        conn.close()


class TestRoutes:
    def test_healthz(self, server, plane):
        status, envelope = _request(server, "GET", "/healthz")
        assert status == 200
        assert envelope["ok"] is True
        assert envelope["data"]["worker"]["executed"] == 0
        assert str(plane.store.root) == envelope["data"]["store"]

    def test_experiments_lists_declared_params(self, server):
        status, envelope = _request(server, "GET", "/experiments")
        assert status == 200
        entries = envelope["data"]
        assert "fig8" in entries and "fig7" in entries
        assert entries["fig7"]["params"] == {"minutes": 60}
        assert entries["fig8"]["title"]

    def test_unknown_job_is_404(self, server):
        status, envelope = _request(server, "GET", "/jobs/job-999999")
        assert status == 404
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "usage"

    def test_unknown_route_is_404(self, server):
        status, envelope = _request(server, "GET", "/nope")
        assert status == 404
        assert envelope["ok"] is False

    def test_invalid_spec_is_400(self, server, plane):
        for bad in ({"kind": "frobnicate"},
                    {"kind": "experiment", "experiment": "fig99"},
                    {"kind": "chaos", "surprise": 1}):
            status, envelope = _request(server, "POST", "/jobs", bad)
            assert status == 400, bad
            assert envelope["ok"] is False
            assert envelope["error"]["code"] == "usage"
        assert plane.store.list_jobs() == []

    def test_fleet_is_empty_before_any_job(self, server):
        status, envelope = _request(server, "GET", "/fleet")
        assert status == 200
        assert envelope["data"] == {"job_id": None, "fleet": None}


class TestJobsOverHttp:
    def test_submit_runs_and_stores_the_experiment(self, server, plane):
        status, envelope = _request(
            server, "POST", "/jobs",
            {"kind": "experiment", "experiment": "fig08"})
        assert status == 201
        record = envelope["data"]
        job_id = record["id"]
        assert record["state"] == "queued"

        plane.worker.drain()  # execute synchronously, no polling

        status, envelope = _request(server, "GET", f"/jobs/{job_id}")
        assert status == 200
        assert envelope["data"]["state"] == "done"
        assert envelope["data"]["error"] is None

        status, envelope = _request(server, "GET",
                                    f"/jobs/{job_id}/result")
        assert status == 200
        payload = envelope["data"]
        assert payload["exp_id"] == "fig8"

        from repro.experiments import run_experiment

        direct = run_experiment("fig8")
        assert payload["result"] == direct.to_dict()
        # The acceptance bar: stored bytes are canonical.
        assert plane.store.result_bytes(job_id).decode() \
            == canonical_json(payload)

        status, envelope = _request(server, "GET", "/jobs")
        assert [j["id"] for j in envelope["data"]["jobs"]] == [job_id]

    def test_http_and_cli_store_identical_bytes(self, server, plane,
                                                tmp_path, capsys):
        """`repro job submit --kind experiment --id fig08` and the same
        spec over POST /jobs end in byte-identical stored results."""
        _status, envelope = _request(
            server, "POST", "/jobs",
            {"kind": "experiment", "experiment": "fig08"})
        http_id = envelope["data"]["id"]
        plane.worker.drain()

        cli_store = tmp_path / "cli-runs"
        assert cli_main(["job", "submit", "--kind", "experiment",
                         "--id", "fig08", "--store", str(cli_store)]) == 0
        capsys.readouterr()
        assert RunStore(cli_store).result_bytes("job-000001") \
            == plane.store.result_bytes(http_id)


class TestFleetDuringChaos:
    def test_fleet_reflects_quarantined_nsm(self, server, plane):
        """While a chaos job (nsm-crash plan) runs in the worker thread,
        GET /fleet converges on a snapshot showing the crashed NSM
        quarantined; the snapshot survives job completion."""
        plane.worker.start()
        _status, envelope = _request(
            server, "POST", "/jobs",
            {"kind": "chaos", "seed": 5,
             "params": {"plan_name": "nsm-crash", "duration": 0.3}})
        job_id = envelope["data"]["id"]

        deadline = time.monotonic() + 120
        quarantined = {}
        while time.monotonic() < deadline:
            _status, envelope = _request(server, "GET", "/fleet")
            view = envelope["data"]
            if view["job_id"] == job_id and view["fleet"] is not None:
                quarantined = view["fleet"]["quarantined"]
                if quarantined:
                    break
            time.sleep(0.05)
        assert quarantined, "no quarantined NSM ever surfaced in /fleet"

        fleet = view["fleet"]
        nsm_ids = {n["nsm_id"] for n in fleet["nsms"]}
        assert {int(k) for k in quarantined} <= nsm_ids
        crashed = [n for n in fleet["nsms"] if n["quarantined"]]
        assert crashed and not crashed[0]["active"]
        assert all(vm["nsm_id"] in nsm_ids for vm in fleet["vms"])
        assert fleet["counters"]["nqes_switched"] > 0

        while time.monotonic() < deadline:
            _status, envelope = _request(server, "GET",
                                         f"/jobs/{job_id}")
            if envelope["data"]["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert envelope["data"]["state"] == "done"
        result = plane.store.load_result(job_id)
        assert result["result"]["quarantined"]


class TestWorkerThreadMode:
    def test_start_stop_executes_queued_jobs(self, tmp_path):
        store = RunStore(tmp_path / "runs")
        ran = threading.Event()

        def executor(spec, fleet_probe=None):
            ran.set()
            return {"ok": True}

        worker = JobWorker(store, executor=executor).start()
        from repro.ctrl.jobs import JobSpec

        job = worker.submit(JobSpec("chaos"))
        assert ran.wait(timeout=10)
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if store.load_job(job.job_id).state == "done":
                break
            time.sleep(0.02)
        worker.stop()
        assert store.load_job(job.job_id).state == "done"
