"""Configuration validation and assembly tests for hosts, VMs, NSMs."""

import pytest

from repro.core.host import NetKernelHost
from repro.core.nsm import NetworkStackModule
from repro.core.vm import GuestVM
from repro.errors import ConfigurationError
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


@pytest.fixture
def host():
    sim = Simulator()
    return NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                      default_delay_sec=usec(25)))


class TestHostValidation:
    def test_duplicate_nsm_rejected(self, host):
        host.add_nsm("n", vcpus=1)
        with pytest.raises(ConfigurationError):
            host.add_nsm("n", vcpus=1)

    def test_duplicate_vm_rejected(self, host):
        nsm = host.add_nsm("n", vcpus=1)
        host.add_vm("v", vcpus=1, nsm=nsm)
        with pytest.raises(ConfigurationError):
            host.add_vm("v", vcpus=1, nsm=nsm)

    def test_unknown_stack_flavour_rejected(self, host):
        with pytest.raises(ConfigurationError):
            host.add_nsm("n", vcpus=1, stack="quantum")

    def test_vm_without_any_nsm_rejected(self, host):
        with pytest.raises(ConfigurationError):
            host.add_vm("v", vcpus=1)  # no NSM registered at all

    def test_stack_flavours_constant_is_accurate(self, host):
        for index, flavour in enumerate(NetKernelHost.STACK_FLAVOURS):
            nsm = host.add_nsm(f"n{index}", vcpus=1, stack=flavour)
            assert nsm.stack.name in ("kernel", "mtcp", "shm")

    def test_default_network_created_when_absent(self):
        sim = Simulator()
        host = NetKernelHost(sim)
        assert host.network is not None

    def test_cycles_by_role_empty_host(self, host):
        cycles = host.cycles_by_role()
        assert cycles["vms"] == 0.0
        assert cycles["nsms"] == 0.0
        # Registration costs may already be charged to CoreEngine.
        assert cycles["coreengine"] >= 0.0


class TestGuestVm:
    def test_needs_a_vcpu(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            GuestVM(sim, "v", vcpus=0)

    def test_cores_named_after_vm(self):
        sim = Simulator()
        vm = GuestVM(sim, "tenant-7", vcpus=2)
        assert vm.cores[0].name == "tenant-7.cpu0"
        assert vm.cores[1].name == "tenant-7.cpu1"
        assert vm.vcpus == 2

    def test_total_cycles_sums_cores(self):
        sim = Simulator()
        vm = GuestVM(sim, "v", vcpus=2)
        vm.cores[0].charge(100)
        vm.cores[1].charge(50)
        assert vm.total_cycles() == 150


class TestNsm:
    def test_needs_a_vcpu(self):
        sim = Simulator()
        with pytest.raises(ConfigurationError):
            NetworkStackModule(sim, "n", vcpus=0)

    def test_stack_name_before_assignment(self):
        sim = Simulator()
        nsm = NetworkStackModule(sim, "n", vcpus=1)
        assert nsm.stack_name == "unassigned"

    def test_nsm_with_vf_cap_is_reachable(self, host):
        """An SR-IOV-capped NSM still serves its VMs end to end."""
        sim = host.sim
        nsm = host.add_nsm("capped", vcpus=1, stack="kernel",
                           nic_rate_bps=gbps(1))
        vm_a = host.add_vm("a", vcpus=1, nsm=nsm)
        vm_b = host.add_vm("b", vcpus=1, nsm=nsm)
        api_a, api_b = host.socket_api(vm_a), host.socket_api(vm_b)
        result = {}

        def server():
            listener = yield from api_a.socket()
            yield from api_a.bind(listener, 80)
            yield from api_a.listen(listener)
            conn = yield from api_a.accept(listener)
            result["got"] = yield from api_a.recv(conn, 1024)

        def client():
            yield sim.timeout(0.001)
            sock = yield from api_b.socket()
            yield from api_b.connect(sock, ("capped", 80))
            yield from api_b.send(sock, b"through the VF")

        vm_a.spawn(server())
        vm_b.spawn(client())
        sim.run(until=5.0)
        assert result["got"] == b"through the VF"
