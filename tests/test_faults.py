"""repro.faults: plan validation, injector effects, seeded determinism,
and the ``repro chaos`` CLI."""

import pytest

from repro.cli import main
from repro.errors import (
    ConfigurationError,
    ConnectionResetError_,
    ERRNO_EXCEPTIONS,
    TimedOutError,
    socket_error_for,
)
from repro.faults import FaultInjector, FaultPlan, PLAN_NAMES, named_plan
from repro.faults.chaos import run_chaos


class TestFaultPlan:
    def test_builders_accumulate_events(self):
        plan = (FaultPlan(seed=7)
                .nsm_crash(0.2, "nsm-a")
                .nsm_stall(0.1, "nsm-b", duration=0.05)
                .doorbell_loss(0.05, 0.1, probability=0.2)
                .ring_slot_drop(0.05, 0.1, probability=0.05)
                .hugepage_squeeze(0.1, "vm1", fraction=0.5, duration=0.1)
                .delayed_completion(0.05, 0.1, delay=1e-4))
        assert len(plan) == 6
        described = plan.describe()
        assert described["seed"] == 7
        assert [e["kind"] for e in described["events"]] == [
            "nsm-crash", "nsm-stall", "doorbell-loss", "ring-slot-drop",
            "hugepage-exhaustion", "delayed-completion"]

    def test_validation_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            FaultPlan().doorbell_loss(0.0, 0.1, probability=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan().hugepage_squeeze(0.0, "vm", fraction=0.0,
                                         duration=0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan().nsm_crash(-1.0, "nsm-a")
        with pytest.raises(ConfigurationError):
            named_plan("unknown-plan", duration=1.0)

    def test_named_plans_cover_every_cli_name(self):
        for name in PLAN_NAMES:
            plan = named_plan(name, duration=1.0, seed=3)
            assert len(plan) == 1
            assert plan.name == name
            assert plan.events[0].at == pytest.approx(0.3)


class TestInjectorWiring:
    def test_arm_twice_rejected(self):
        from repro.core.host import NetKernelHost
        from repro.sim import Simulator

        sim = Simulator()
        host = NetKernelHost(sim)
        host.add_nsm("nsm-a", vcpus=1, stack="kernel")
        injector = FaultInjector(sim, host,
                                 FaultPlan().nsm_crash(0.1, "nsm-a"))
        injector.arm()
        with pytest.raises(ConfigurationError):
            injector.arm()

    def test_unknown_target_rejected_at_arm(self):
        from repro.core.host import NetKernelHost
        from repro.sim import Simulator

        sim = Simulator()
        host = NetKernelHost(sim)
        host.add_nsm("nsm-a", vcpus=1, stack="kernel")
        plan = FaultPlan().doorbell_loss(0.0, 0.1, probability=0.5,
                                         target="no-such-device")
        with pytest.raises(ConfigurationError):
            FaultInjector(sim, host, plan).arm()


class TestChaosDeterminism:
    def test_same_seed_same_fingerprint(self):
        first = run_chaos(seed=11, plan_name="nsm-crash", duration=0.2)
        second = run_chaos(seed=11, plan_name="nsm-crash", duration=0.2)
        assert (first["switch_fingerprint"]
                == second["switch_fingerprint"])
        assert first["leaks"] == [] and second["leaks"] == []

    def test_probabilistic_plan_replays_bit_identically(self):
        first = run_chaos(seed=4, plan_name="ring-drop", duration=0.2)
        second = run_chaos(seed=4, plan_name="ring-drop", duration=0.2)
        assert (first["switch_fingerprint"]
                == second["switch_fingerprint"])
        assert first["leaks"] == [] and second["leaks"] == []

    def test_different_seeds_diverge_under_random_faults(self):
        # 20% doorbell loss over thousands of kicks: two seeds agreeing
        # by chance is astronomically unlikely.
        first = run_chaos(seed=1, plan_name="doorbell-loss", duration=0.2)
        second = run_chaos(seed=2, plan_name="doorbell-loss", duration=0.2)
        assert (first["switch_fingerprint"]
                != second["switch_fingerprint"])


class TestChaosEffects:
    def test_crash_plan_quarantines_and_recovers(self):
        result = run_chaos(seed=5, plan_name="nsm-crash", duration=0.3)
        assert result["faults"]["crashes"] == 1
        assert result["quarantined"]  # the primary NSM was detected dead
        assert result["counters"]["resets"] >= 1  # client saw ECONNRESET
        assert result["recovery_sec"] is not None
        assert result["leaks"] == []

    def test_squeeze_plan_grabs_and_returns_memory(self):
        result = run_chaos(seed=5, plan_name="hugepage-squeeze",
                           duration=0.3)
        assert result["faults"]["squeezes"] == 1
        assert result["faults"]["squeezed_bytes"] > 0
        assert result["faults"]["buffers_held"] == 0  # released after window
        assert result["leaks"] == []

    def test_loss_plans_actually_drop(self):
        doorbells = run_chaos(seed=9, plan_name="doorbell-loss",
                              duration=0.2)
        assert doorbells["faults"]["doorbells_dropped"] > 0
        slots = run_chaos(seed=9, plan_name="ring-drop", duration=0.2)
        assert slots["faults"]["slots_dropped"] > 0
        assert slots["ce"]["nqes_dropped"] >= slots["faults"]["slots_dropped"]

    def test_delayed_completion_slows_but_does_not_break(self):
        result = run_chaos(seed=9, plan_name="delayed-completion",
                           duration=0.2)
        assert result["faults"]["completions_delayed"] > 0
        assert result["counters"]["requests_ok"] > 0
        assert result["leaks"] == []


class TestChaosCli:
    def test_chaos_verify_exit_zero(self, capsys):
        code = main(["chaos", "--seed", "5", "--plan", "nsm-crash",
                     "--duration", "0.2", "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify OK" in out

    def test_chaos_json_output(self, capsys):
        import json

        code = main(["chaos", "--seed", "5", "--plan", "nsm-stall",
                     "--duration", "0.2", "--json"])
        assert code == 0
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is True
        assert envelope["kind"] == "chaos"
        assert envelope["error"] is None
        payload = envelope["data"]["result"]
        assert payload["plan"]["name"] == "nsm-stall"
        assert payload["leaks"] == []
        assert len(payload["switch_fingerprint"]) == 64


class TestErrorsExtensions:
    def test_timed_out_error_carries_etimedout(self):
        error = TimedOutError("late")
        assert error.errno_name == "ETIMEDOUT"

    def test_factory_resolves_aliased_names(self):
        assert isinstance(socket_error_for("ECONNRESET"),
                          ConnectionResetError_)
        assert isinstance(socket_error_for("ETIMEDOUT"), TimedOutError)

    def test_errno_exceptions_matches_declared_names(self):
        for errno_name, exc_type in ERRNO_EXCEPTIONS.items():
            assert exc_type.errno_name == errno_name

    def test_all_exports_resolve(self):
        import repro.errors as errors_module

        for name in errors_module.__all__:
            assert hasattr(errors_module, name)
