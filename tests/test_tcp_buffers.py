"""Tests (including property-based) for TCP stream buffers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ResourceError
from repro.stack.tcp.buffers import ReceiveBuffer, SendBuffer


class TestSendBuffer:
    def test_write_peek_advance(self):
        buf = SendBuffer(100)
        assert buf.write(b"hello world") == 11
        assert buf.peek(0, 5) == b"hello"
        assert buf.peek(6, 5) == b"world"
        buf.advance(6)
        assert buf.peek(0, 5) == b"world"

    def test_write_respects_capacity(self):
        buf = SendBuffer(4)
        assert buf.write(b"abcdef") == 4
        assert buf.free_space == 0
        assert buf.write(b"x") == 0

    def test_advance_past_data_rejected(self):
        buf = SendBuffer(100)
        buf.write(b"abc")
        with pytest.raises(ResourceError):
            buf.advance(4)

    def test_negative_args_rejected(self):
        buf = SendBuffer(100)
        with pytest.raises(ResourceError):
            buf.peek(-1, 5)
        with pytest.raises(ResourceError):
            buf.advance(-1)

    @given(st.lists(st.binary(min_size=1, max_size=50), max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_stream_integrity_property(self, chunks):
        """Bytes come out in exactly the order and content written."""
        buf = SendBuffer(10_000)
        joined = b"".join(chunks)
        for chunk in chunks:
            assert buf.write(chunk) == len(chunk)
        out = buf.peek(0, len(joined))
        assert out == joined


class TestReceiveBuffer:
    def test_in_order_delivery(self):
        buf = ReceiveBuffer(1000, initial_seq=0)
        assert buf.deliver(0, b"abc") == 3
        assert buf.deliver(3, b"def") == 3
        assert buf.read(100) == b"abcdef"
        assert buf.rcv_nxt == 6

    def test_out_of_order_reassembly(self):
        buf = ReceiveBuffer(1000, initial_seq=0)
        assert buf.deliver(3, b"def") == 0  # stashed
        assert buf.deliver(0, b"abc") == 6  # drains the stash
        assert buf.read(100) == b"abcdef"

    def test_duplicate_segments_ignored(self):
        buf = ReceiveBuffer(1000, initial_seq=0)
        buf.deliver(0, b"abc")
        assert buf.deliver(0, b"abc") == 0
        assert buf.read(100) == b"abc"

    def test_overlapping_prefix_trimmed(self):
        buf = ReceiveBuffer(1000, initial_seq=0)
        buf.deliver(0, b"abc")
        assert buf.deliver(1, b"bcde") == 2  # only "de" is new
        assert buf.read(100) == b"abcde"

    def test_window_shrinks_with_backlog(self):
        buf = ReceiveBuffer(10, initial_seq=0)
        assert buf.window == 10
        buf.deliver(0, b"abcde")
        assert buf.window == 5

    def test_window_closed_drops_excess(self):
        buf = ReceiveBuffer(4, initial_seq=0)
        buf.deliver(0, b"abcd")
        assert buf.window == 0
        assert buf.deliver(4, b"e") == 0
        assert buf.read(100) == b"abcd"

    def test_read_partial(self):
        buf = ReceiveBuffer(100, initial_seq=0)
        buf.deliver(0, b"abcdef")
        assert buf.read(2) == b"ab"
        assert buf.read(100) == b"cdef"

    def test_nonzero_initial_seq(self):
        buf = ReceiveBuffer(100, initial_seq=5000)
        assert buf.deliver(5000, b"xy") == 2
        assert buf.rcv_nxt == 5002

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_reassembly_property(self, data):
        """Delivering segments of a stream in any order yields the
        original bytes, in order, exactly once."""
        payload = data.draw(st.binary(min_size=1, max_size=200))
        # Cut into segments.
        cuts = sorted(data.draw(st.sets(
            st.integers(min_value=1, max_value=max(1, len(payload) - 1)),
            max_size=8)))
        bounds = [0] + cuts + [len(payload)]
        segments = [
            (bounds[i], payload[bounds[i]:bounds[i + 1]])
            for i in range(len(bounds) - 1)
            if bounds[i] < bounds[i + 1]
        ]
        order = data.draw(st.permutations(segments))
        buf = ReceiveBuffer(10_000, initial_seq=0)
        for seq, chunk in order:
            buf.deliver(seq, chunk)
        # Retransmit everything once more (idempotence under duplicates).
        for seq, chunk in order:
            buf.deliver(seq, chunk)
        assert buf.read(100_000) == payload


class TestDeliverBatchEquivalence:
    """``deliver_batch(segs)`` must equal N single ``deliver`` calls —
    same bytes made ready, same cursor, same window — in both storage
    modes (the vectorized fast path takes a different code path only
    for consecutive in-order segments with an empty stash)."""

    def _check(self, segments, vectorized, capacity=1000):
        batched = ReceiveBuffer(capacity, initial_seq=0, vectorized=vectorized)
        single = ReceiveBuffer(capacity, initial_seq=0, vectorized=vectorized)
        made_b = batched.deliver_batch(segments)
        made_s = sum(single.deliver(seq, data) for seq, data in segments)
        assert made_b == made_s
        assert batched.rcv_nxt == single.rcv_nxt
        assert batched.window == single.window
        assert batched.read(10 * capacity) == single.read(10 * capacity)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_in_order_run(self, vectorized):
        self._check([(0, b"abc"), (3, b"def"), (6, b"ghi")], vectorized)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_out_of_order_then_fill(self, vectorized):
        self._check([(6, b"ghi"), (3, b"def"), (0, b"abc")], vectorized)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_overlap_and_duplicates(self, vectorized):
        self._check(
            [(0, b"abcd"), (2, b"cdef"), (0, b"abcd"), (4, b"efgh")],
            vectorized)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_stash_mid_batch_disables_fast_path(self, vectorized):
        # Segment 2 stashes; segments 3-4 must go through full deliver()
        # even though they are in-order, or the stash would never drain.
        self._check(
            [(0, b"aa"), (4, b"cc"), (2, b"bb"), (6, b"dd")], vectorized)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_window_closes_mid_batch(self, vectorized):
        self._check([(0, b"abcd"), (4, b"efgh"), (8, b"ijkl")],
                    vectorized, capacity=6)

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_memoryview_segments(self, vectorized):
        # The zero-copy hand-off delivers memoryviews over the sender
        # slab; batch delivery must materialize them exactly like deliver.
        slab = bytearray(b"abcdefgh")
        segs = [(0, memoryview(slab)[0:4]), (4, memoryview(slab)[4:8])]
        buf = ReceiveBuffer(100, initial_seq=0, vectorized=vectorized)
        assert buf.deliver_batch(segs) == 8
        slab[:] = b"XXXXXXXX"  # mutating the slab must not alias ready data
        assert buf.read(100) == b"abcdefgh"

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_batch_equivalence_property(self, data):
        payload = data.draw(st.binary(min_size=1, max_size=200))
        cuts = sorted(data.draw(st.sets(
            st.integers(min_value=1, max_value=max(1, len(payload) - 1)),
            max_size=8)))
        bounds = [0] + cuts + [len(payload)]
        segments = [
            (bounds[i], payload[bounds[i]:bounds[i + 1]])
            for i in range(len(bounds) - 1)
            if bounds[i] < bounds[i + 1]
        ]
        order = data.draw(st.permutations(segments + segments))
        vectorized = data.draw(st.booleans())
        self._check(order, vectorized, capacity=10_000)


class TestStaleOutOfOrderPurge:
    """Regression: retransmissions at shifted offsets must not leave
    stale stashed chunks that permanently shrink the window."""

    def test_overlapping_retransmit_does_not_leak_window(self):
        buf = ReceiveBuffer(100, initial_seq=0)
        buf.deliver(20, b"c" * 10)   # out of order, stashed
        buf.deliver(25, b"d" * 10)   # overlapping retransmit, stashed too
        assert buf.window == 80
        buf.deliver(0, b"a" * 20)    # fills the hole; drains 20..35
        assert buf.read(100) == b"a" * 20 + b"c" * 10 + b"d" * 5
        # Every stashed byte must be reclaimed: full window restored.
        assert buf.window == 100
        assert not buf._out_of_order

    def test_fully_stale_chunk_purged(self):
        buf = ReceiveBuffer(100, initial_seq=0)
        buf.deliver(10, b"x" * 5)    # stashed
        buf.deliver(0, b"y" * 30)    # covers and passes the stash entirely
        buf.read(100)
        assert buf.window == 100
        assert not buf._out_of_order

    def test_long_lossy_stream_never_wedges_window(self):
        """Simulates heavy retransmission overlap patterns."""
        import random

        rng = random.Random(5)
        payload = bytes(rng.randrange(256) for _ in range(4000))
        buf = ReceiveBuffer(1000, initial_seq=0)
        out = bytearray()
        cursor_stall = 0
        while len(out) < len(payload) and cursor_stall < 10_000:
            # Random (possibly overlapping, possibly stale) segment near
            # the cursor, like a retransmitting sender would produce.
            base = max(0, buf.rcv_nxt - 30)
            seq = rng.randrange(base, min(len(payload), base + 200))
            end = min(len(payload), seq + rng.randrange(1, 120))
            buf.deliver(seq, payload[seq:end])
            out.extend(buf.read(1000))
            cursor_stall += 1
        assert bytes(out) == payload
        assert buf.window == 1000
