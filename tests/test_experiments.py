"""Tests for the experiment runners and the report machinery.

Fast (analytic) experiments run at full fidelity; the DES-backed ones run
scaled-down here and at full scale in the benchmark harness.
"""

import pytest

from repro.experiments import REGISTRY, run_experiment
from repro.experiments.report import ExperimentResult, qualitative, ratio_check

ANALYTIC_EXPERIMENTS = [
    "fig7", "fig8", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19", "fig20", "table2", "table3",
    "table4", "table6", "table7",
]


class TestReport:
    def test_table_str_contains_everything(self):
        result = ExperimentResult("figX", "demo", ["a", "b"],
                                  [[1, 2.5], [3, 40000.0]], notes="hello")
        text = result.table_str()
        assert "figX" in text and "demo" in text
        assert "hello" in text
        assert "40,000" in text

    def test_row_dicts_and_column(self):
        result = ExperimentResult("figX", "demo", ["a", "b"], [[1, 2]])
        assert result.row_dicts() == [{"a": 1, "b": 2}]
        assert result.column("b") == [2]

    def test_ratio_check(self):
        assert ratio_check(110, 100, tolerance=0.2)
        assert not ratio_check(200, 100, tolerance=0.2)
        assert ratio_check(0, 0)

    def test_qualitative(self):
        assert qualitative(110, 100) == "+10%"
        assert qualitative(90, 100) == "-10%"
        assert qualitative(5, 0) == "n/a"


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {f"fig{i}" for i in range(7, 22)} | {
            f"table{i}" for i in range(2, 8)}
        assert expected <= set(REGISTRY)
        extras = set(REGISTRY) - expected
        # Beyond the paper's own figures/tables we register ablations,
        # the §8 robustness experiments (NSM failover, live migration),
        # and the §7 operational follow-ons (NSM autoscaling, the
        # NDR/PDR capacity envelope).
        assert all(x.startswith("ablation-")
                   or x in ("fig-failover", "fig-migration",
                            "fig-autoscale", "fig-capacity")
                   for x in extras)

    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    @pytest.mark.parametrize("exp_id", sorted(REGISTRY))
    def test_declared_params_match_runner_signature(self, exp_id):
        """The declared parameter tuple IS the runner's keyword
        interface — names, order-insensitively, with a default for
        every one — so the declarations can never drift from the code."""
        import inspect

        entry = REGISTRY[exp_id]
        runner = entry.resolve()
        signature = inspect.signature(runner)
        accepted = {
            name for name, parameter in signature.parameters.items()
            if parameter.kind in (parameter.POSITIONAL_OR_KEYWORD,
                                  parameter.KEYWORD_ONLY)
        }
        assert set(entry.params) == accepted, (
            f"{exp_id}: declared {sorted(entry.params)} but "
            f"{entry.module}.{entry.fn} accepts {sorted(accepted)}")
        defaults = entry.param_defaults()
        assert set(defaults) == set(entry.params), (
            f"{exp_id}: every declared parameter needs a default")

    @pytest.mark.parametrize("exp_id", sorted(REGISTRY))
    def test_every_registry_module_exposes_canonical_run(self, exp_id):
        import importlib

        entry = REGISTRY[exp_id]
        module = importlib.import_module(
            f"repro.experiments.{entry.module}")
        assert callable(getattr(module, "run")), (
            f"repro.experiments.{entry.module} has no canonical run()")

    def test_canonical_id_aliases(self):
        from repro.experiments.registry import canonical_id

        assert canonical_id("fig08") == "fig8"
        assert canonical_id("FIG08") == "fig8"
        assert canonical_id("table02") == "table2"
        assert canonical_id("fig13") == "fig13"
        assert canonical_id("fig-migration") == "fig-migration"
        assert canonical_id("fig99") == "fig99"  # unknown: unchanged

    def test_unknown_kwargs_rejected_with_declared_interface(self):
        from repro.errors import JobValidationError

        with pytest.raises(JobValidationError) as excinfo:
            run_experiment("fig7", minutess=3)
        assert "minutess" in str(excinfo.value)
        assert "minutes" in str(excinfo.value)


@pytest.mark.parametrize("exp_id", ANALYTIC_EXPERIMENTS)
def test_analytic_experiment_runs(exp_id):
    result = run_experiment(exp_id)
    assert isinstance(result, ExperimentResult)
    assert result.rows
    assert result.table_str()


class TestExperimentContent:
    def test_fig7_trace_shape(self):
        result = run_experiment("fig7")
        assert len(result.rows) == 60
        for name in ("AG1", "AG2", "AG3"):
            series = result.column(name)
            assert max(series) > 70      # bursts near capacity
            peak = max(series)
            mean = sum(series) / len(series)
            assert peak > 4 * mean       # bursty

    def test_fig8_netkernel_beats_baseline_per_core(self):
        result = run_experiment("fig8")
        baseline = result.column("baseline_rps_per_core")
        netkernel = result.column("netkernel_rps_per_core")
        assert sum(netkernel) > sum(baseline)

    def test_table2_core_saving(self):
        result = run_experiment("table2")
        rows = {row[0]: row for row in result.rows}
        assert rows["# AGs"][2] > rows["# AGs"][1]
        assert "cores saved" in result.notes

    def test_fig11_functional_matches_model(self):
        result = run_experiment("fig11")
        for row in result.rows:
            batch, model, functional = row[0], row[1], row[2]
            assert functional == pytest.approx(model, rel=0.05)

    def test_fig12_functional_matches_model(self):
        result = run_experiment("fig12")
        for row in result.rows:
            assert row[2] == pytest.approx(row[1], rel=0.05)

    def test_fig13_parity_column(self):
        result = run_experiment("fig13")
        for row in result.row_dicts():
            assert row["netkernel_gbps"] == pytest.approx(
                row["baseline_gbps"], rel=0.25)

    def test_fig20_mtcp_reaches_1_1m(self):
        result = run_experiment("fig20")
        final = result.row_dicts()[-1]
        assert final["nk_mtcp_krps"] == pytest.approx(1100, rel=0.1)

    def test_table6_ramp(self):
        result = run_experiment("table6")
        measured = result.column("measured")
        assert measured == sorted(measured)

    def test_fig10_crossover_and_win(self):
        result = run_experiment("fig10")
        speedups = result.column("speedup")
        assert speedups[-1] > 1.6          # big win at 8KB
        assert speedups[0] < speedups[-1]  # growing with size


class TestDesExperimentsScaledDown:
    """Small configurations keeping test runtime reasonable; the bench
    harness runs the full versions."""

    def test_fig9_quick(self):
        from repro.experiments import fig09_fairness

        base_a, base_b = fig09_fairness._run_one(
            16, vm_level_cc=False, duration=1.2)
        nk_a, nk_b = fig09_fairness._run_one(
            16, vm_level_cc=True, duration=1.2)
        base_share = base_a / (base_a + base_b)
        nk_share = nk_a / (nk_a + nk_b)
        # Baseline: ~1/3 for the 8-flow VM; VMCC: ~1/2.
        assert base_share < 0.45
        assert 0.38 <= nk_share <= 0.68
        assert nk_share > base_share

    def test_fig21_quick(self):
        result = run_experiment("fig21", scale=0.02, time_factor=0.1)
        rows = result.row_dicts()
        # During the all-three window (paper seconds 10-20) the caps hold.
        window = [r for r in rows if 12 <= r["t_sec"] <= 18]
        assert window
        vm1 = sum(r["vm1"] for r in window) / len(window)
        vm2 = sum(r["vm2"] for r in window) / len(window)
        vm3 = sum(r["vm3"] for r in window) / len(window)
        assert vm1 <= 1.4       # capped at 1 Gbps (paper scale)
        assert vm2 <= 0.8       # capped at 0.5 Gbps
        assert vm3 > vm1 + vm2  # work conservation: VM3 takes the rest

    def test_table5_quick(self):
        result = run_experiment("table5", requests=300, concurrency=60)
        rows = {row[0]: dict(zip(result.columns, row))
                for row in result.rows}
        kernel = rows["NetKernel"]
        baseline = rows["Baseline"]
        mtcp = rows["NetKernel, mTCP NSM"]
        # Baseline and NetKernel comparable; mTCP tighter than kernel.
        assert kernel["mean"] == pytest.approx(baseline["mean"], rel=0.5)
        assert mtcp["stddev"] <= kernel["stddev"]
        assert mtcp["mean"] <= kernel["mean"]
