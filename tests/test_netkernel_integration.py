"""Integration tests: the full NetKernel path.

GuestLib → NQE → CoreEngine → ServiceLib → stack → fabric → back.
"""

import pytest

from repro.core.host import NetKernelHost
from repro.errors import SocketError
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


@pytest.fixture
def env():
    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(10),
                      default_delay_sec=usec(25))
    host = NetKernelHost(sim, network)
    return sim, network, host


def transfer(sim, host, nsm, payload, server_vcpus=1, client_vcpus=1):
    """Send ``payload`` from one VM to another through ``nsm``."""
    vm_server = host.add_vm(f"vmS{nsm.name}", vcpus=server_vcpus, nsm=nsm)
    vm_client = host.add_vm(f"vmC{nsm.name}", vcpus=client_vcpus, nsm=nsm)
    api_server = host.socket_api(vm_server)
    api_client = host.socket_api(vm_client)
    result = {}

    def server():
        listener = yield from api_server.socket()
        yield from api_server.bind(listener, 80)
        yield from api_server.listen(listener, 64)
        conn = yield from api_server.accept(listener)
        data = bytearray()
        while True:
            chunk = yield from api_server.recv(conn, 65536)
            if not chunk:
                break
            data.extend(chunk)
        result["received"] = bytes(data)
        yield from api_server.close(conn)
        yield from api_server.close(listener)

    def client():
        # Let the server finish socket/bind/listen round trips first.
        yield sim.timeout(0.001)
        sock = yield from api_client.socket()
        yield from api_client.connect(sock, (nsm.name, 80))
        yield from api_client.send(sock, payload)
        yield from api_client.close(sock)

    vm_server.spawn(server())
    vm_client.spawn(client())
    sim.run(until=30.0)
    return result, vm_server, vm_client


class TestDataPath:
    def test_end_to_end_integrity_kernel_nsm(self, env):
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        payload = bytes(i % 255 for i in range(200_000))
        result, *_ = transfer(sim, host, nsm, payload)
        assert result["received"] == payload

    def test_end_to_end_integrity_mtcp_nsm(self, env):
        sim, _, host = env
        nsm = host.add_nsm("mtcp0", vcpus=1, stack="mtcp")
        payload = bytes((i * 7) % 251 for i in range(100_000))
        result, *_ = transfer(sim, host, nsm, payload)
        assert result["received"] == payload

    def test_end_to_end_integrity_shm_nsm(self, env):
        sim, _, host = env
        nsm = host.add_nsm("shm0", vcpus=1, stack="shm")
        payload = bytes((i * 13) % 249 for i in range(100_000))
        result, *_ = transfer(sim, host, nsm, payload)
        assert result["received"] == payload

    def test_hugepages_fully_released(self, env):
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        _, vm_server, vm_client = transfer(sim, host, nsm, b"d" * 300_000)
        for vm in (vm_server, vm_client):
            region = host.coreengine.vm_device(vm.vm_id).hugepages
            assert region.live_buffers == 0
            assert region.allocated == 0

    def test_connection_table_drains_after_close(self, env):
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        transfer(sim, host, nsm, b"tiny")
        # Only the listener could remain, but we closed it too.
        assert len(host.coreengine.table) == 0

    def test_multi_queue_set_vm(self, env):
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=2, stack="kernel")
        payload = bytes(i % 250 for i in range(150_000))
        result, *_ = transfer(sim, host, nsm, payload, server_vcpus=2,
                              client_vcpus=2)
        assert result["received"] == payload


class TestControlPath:
    def test_connect_refused(self, env):
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        vm = host.add_vm("vm1", vcpus=1, nsm=nsm)
        api = host.socket_api(vm)
        outcome = {}

        def client():
            sock = yield from api.socket()
            try:
                yield from api.connect(sock, ("nsm0", 9999))
            except SocketError as error:
                outcome["errno"] = error.errno_name

        vm.spawn(client())
        sim.run(until=5.0)
        assert outcome["errno"] in ("ECONNREFUSED", "ECONNRESET")

    def test_bind_conflict_reported_through_nqe_path(self, env):
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        vm = host.add_vm("vm1", vcpus=1, nsm=nsm)
        api = host.socket_api(vm)
        outcome = {}

        def app():
            s1 = yield from api.socket()
            yield from api.bind(s1, 80)
            yield from api.listen(s1)
            s2 = yield from api.socket()
            try:
                yield from api.bind(s2, 80)
            except SocketError as error:
                outcome["errno"] = error.errno_name

        vm.spawn(app())
        sim.run(until=5.0)
        assert outcome["errno"] == "EADDRINUSE"

    def test_two_vms_cannot_bind_same_port_on_shared_nsm(self, env):
        """Port namespace is per-NSM: a consequence of multiplexing."""
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        vm1 = host.add_vm("vm1", vcpus=1, nsm=nsm)
        vm2 = host.add_vm("vm2", vcpus=1, nsm=nsm)
        outcome = {}

        def binder(api, key, delay):
            yield host.sim.timeout(delay)
            sock = yield from api.socket()
            try:
                yield from api.bind(sock, 80)
                yield from api.listen(sock)
                outcome[key] = "ok"
            except SocketError as error:
                outcome[key] = error.errno_name

        vm1.spawn(binder(host.socket_api(vm1), "vm1", 0.0))
        vm2.spawn(binder(host.socket_api(vm2), "vm2", 0.01))
        sim.run(until=5.0)
        assert outcome["vm1"] == "ok"
        assert outcome["vm2"] == "EADDRINUSE"

    def test_setsockopt_roundtrip(self, env):
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        vm = host.add_vm("vm1", vcpus=1, nsm=nsm)
        api = host.socket_api(vm)
        done = {}

        def app():
            sock = yield from api.socket()
            yield from api.setsockopt(sock, "SO_REUSEPORT", 1)
            done["ok"] = True

        vm.spawn(app())
        sim.run(until=1.0)
        assert done.get("ok")


class TestMultiplexing:
    def test_one_nsm_serves_two_client_vms(self, env):
        """Use case 1's mechanism: distinct VMs, one network stack."""
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        vm_server = host.add_vm("srv", vcpus=1, nsm=nsm)
        api_server = host.socket_api(vm_server)
        results = {}

        def server():
            listener = yield from api_server.socket()
            yield from api_server.bind(listener, 80)
            yield from api_server.listen(listener, 64)
            for _ in range(2):
                conn = yield from api_server.accept(listener)
                data = yield from api_server.recv(conn, 1024)
                yield from api_server.send(conn, b"ack:" + data)
                yield from api_server.close(conn)

        vm_server.spawn(server())

        def client(vm_name, message):
            vm = host.add_vm(vm_name, vcpus=1, nsm=nsm)
            api = host.socket_api(vm)

            def app():
                sock = yield from api.socket()
                yield from api.connect(sock, ("nsm0", 80))
                yield from api.send(sock, message)
                reply = yield from api.recv(sock, 1024)
                results[vm_name] = reply
                yield from api.close(sock)

            vm.spawn(app())

        client("cli1", b"one")
        client("cli2", b"two")
        sim.run(until=10.0)
        assert results["cli1"] == b"ack:one"
        assert results["cli2"] == b"ack:two"

    def test_dynamic_nsm_switch(self, env):
        """§3: 'a user can switch her NSM on the fly' (new connections)."""
        sim, _, host = env
        nsm_a = host.add_nsm("nsmA", vcpus=1, stack="kernel")
        nsm_b = host.add_nsm("nsmB", vcpus=1, stack="kernel")
        vm = host.add_vm("vm1", vcpus=1, nsm=nsm_a)
        api = host.socket_api(vm)
        seen = {}

        def app():
            s1 = yield from api.socket()
            yield from api.bind(s1, 70)
            yield from api.listen(s1)
            seen["a_conns"] = nsm_a.stack.engine.active_connections
            host.switch_nsm(vm, nsm_b)
            s2 = yield from api.socket()
            yield from api.bind(s2, 71)
            yield from api.listen(s2)
            seen["b_conns"] = nsm_b.stack.engine.active_connections
            seen["a_listeners"] = len(nsm_a.stack.engine._listeners)
            seen["b_listeners"] = len(nsm_b.stack.engine._listeners)

        vm.spawn(app())
        sim.run(until=5.0)
        assert seen["a_listeners"] == 1
        assert seen["b_listeners"] == 1


class TestAccounting:
    def test_cycles_attributed_to_all_roles(self, env):
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        transfer(sim, host, nsm, b"c" * 100_000)
        cycles = host.cycles_by_role()
        assert cycles["vms"] > 0
        assert cycles["nsms"] > 0
        assert cycles["coreengine"] > 0

    def test_interrupt_driven_polling_counters(self, env):
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        _, vm_server, vm_client = transfer(sim, host, nsm, b"p" * 50_000)
        device = host.coreengine.vm_device(vm_client.vm_id)
        assert device.wakeups_polled + device.wakeups_interrupt > 0

    def test_ce_switch_counters(self, env):
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        transfer(sim, host, nsm, b"s" * 10_000)
        stats = host.coreengine.stats()
        assert stats["nqes_switched"] > 10
        assert stats["batches"] > 0
        assert stats["avg_batch"] >= 1.0


class TestDynamicQueueScaling:
    def test_hot_added_vcpu_lane_carries_traffic(self, env):
        """§4.4: queue sets can be added with the number of vCPUs."""
        sim, _, host = env
        nsm = host.add_nsm("nsm0", vcpus=2, stack="kernel")
        vm_server = host.add_vm("srv", vcpus=1, nsm=nsm)
        vm_client = host.add_vm("cli", vcpus=1, nsm=nsm)
        api_s = host.socket_api(vm_server)
        api_c = host.socket_api(vm_client)
        results = {}

        def server():
            listener = yield from api_s.socket(0)
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener, 64)
            for index in range(2):
                conn = yield from api_s.accept(listener)
                data = yield from api_s.recv(conn, 1024)
                yield from api_s.send(conn, b"ok:" + data)
                yield from api_s.close(conn)

        vm_server.spawn(server())

        def request(vcpu, key):
            sock = yield from api_c.socket(vcpu)
            yield from api_c.connect(sock, ("nsm0", 80), vcpu)
            yield from api_c.send(sock, key.encode(), vcpu)
            results[key] = yield from api_c.recv(sock, 1024, vcpu)
            yield from api_c.close(sock, vcpu)

        def driver():
            yield sim.timeout(0.001)
            yield from request(0, "before")
            # Hot-add a vCPU (and its queue-set lane) mid-run.
            new_lane = host.add_vcpu(vm_client)
            assert new_lane == 1
            yield from request(new_lane, "after")

        vm_client.spawn(driver())
        sim.run(until=5.0)
        assert results["before"] == b"ok:before"
        assert results["after"] == b"ok:after"
        assert len(host.coreengine.vm_device(vm_client.vm_id).queue_sets) == 2
