"""Cross-validation: the functional simulation and the analytic model
must tell the same story.

The analytic model (repro.model) and the packet-level simulation share
the cost model but exercise completely different code; agreeing on
relative results is strong evidence neither is wired wrong.
"""

import pytest

from repro.apps.epoll_server import EpollServer
from repro.apps.load_gen import LoadGenerator
from repro.core.host import NetKernelHost
from repro.model import throughput as tp
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


def functional_rps(stack: str, requests: int = 600) -> float:
    """Measured requests/second of the functional NetKernel system."""
    sim = Simulator()
    host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(100),
                                      default_delay_sec=usec(25)))
    nsm_server = host.add_nsm("srv-nsm", vcpus=1, stack=stack)
    nsm_client = host.add_nsm("cli-nsm", vcpus=2, stack=stack)
    server_vm = host.add_vm("server", vcpus=1, nsm=nsm_server)
    client_vm = host.add_vm("client", vcpus=2, nsm=nsm_client)
    server = EpollServer(sim, host.socket_api(server_vm), port=80,
                         app_cycles_per_request=2_500.0,
                         cores=server_vm.cores)
    server.start(server_vm)
    load = LoadGenerator(sim, host.socket_api(client_vm), ("srv-nsm", 80),
                         total_requests=requests, concurrency=50)
    sim.run(until=0.002)
    load.start(client_vm)
    sim.run(until=60.0)
    assert load.stats.completed == requests
    return load.stats.rps


class TestFunctionalVsModel:
    def test_mtcp_beats_kernel_in_both_worlds(self):
        """The Table 3 ordering must hold functionally too."""
        functional_kernel = functional_rps("kernel")
        functional_mtcp = functional_rps("mtcp")
        model_kernel = tp.requests_per_second("netkernel", stack="kernel")
        model_mtcp = tp.requests_per_second("netkernel", stack="mtcp")
        assert functional_mtcp > functional_kernel
        assert model_mtcp > model_kernel
        # And the win factors are in the same ballpark (within 2x).
        functional_win = functional_mtcp / functional_kernel
        model_win = model_mtcp / model_kernel
        assert 0.5 <= functional_win / model_win <= 2.0

    def test_functional_kernel_rps_is_same_order_as_model(self):
        """Absolute capacity: functional within ~2x of the calibrated
        70K rps/core (per-segment + per-connection charges approximate
        the end-to-end request cost)."""
        measured = functional_rps("kernel")
        model = tp.requests_per_second("netkernel", stack="kernel")
        assert model / 2.5 <= measured <= model * 2.5

    def test_fig12_functional_equals_model_exactly(self):
        """The hugepage microbench shares constants by construction."""
        from repro.experiments.fig12_memcopy import functional_copy_gbps

        for size in (64, 1024, 8192):
            assert functional_copy_gbps(size, messages=200) == pytest.approx(
                tp.memcopy_throughput_gbps(size), rel=1e-6)

    def test_fig11_functional_equals_model_exactly(self):
        from repro.experiments.fig11_nqe_switching import (
            functional_switch_rate,
        )

        for batch in (1, 8, 64):
            assert functional_switch_rate(batch, 1024) == pytest.approx(
                tp.nqe_switch_rate(batch), rel=0.01)
