"""Tests for unit helpers, the error hierarchy, and the CLI."""

import pytest

from repro import errors, units
from repro.cli import main as cli_main


class TestUnits:
    def test_sizes(self):
        assert units.KiB(8) == 8192
        assert units.MiB(2) == 2 * 1024 * 1024
        assert units.KB == 1000

    def test_rates(self):
        assert units.gbps(100) == 100e9
        assert units.mbps(500) == 500e6
        assert units.kbps(10) == 10e3
        assert units.to_gbps(25e9) == 25.0

    def test_bytes_bits(self):
        assert units.bytes_per_sec(units.gbps(8)) == 1e9
        assert units.bits(125) == 1000

    def test_time(self):
        assert units.usec(20) == pytest.approx(20e-6)
        assert units.msec(5) == pytest.approx(0.005)
        assert units.nsec(100) == pytest.approx(1e-7)
        assert units.to_usec(1e-6) == pytest.approx(1.0)
        assert units.to_msec(0.25) == pytest.approx(250.0)

    def test_cycles(self):
        assert units.PAPER_CORE_HZ == 2.3e9
        seconds = units.cycles_to_seconds(2.3e9)
        assert seconds == pytest.approx(1.0)
        assert units.seconds_to_cycles(2.0) == pytest.approx(4.6e9)


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(errors.RingFullError, errors.ResourceError)
        assert issubclass(errors.ResourceError, errors.NetKernelError)
        assert issubclass(errors.SocketError, errors.NetKernelError)

    def test_errno_names(self):
        assert errors.AddressInUseError().errno_name == "EADDRINUSE"
        assert errors.ConnectionRefusedError_().errno_name == "ECONNREFUSED"
        assert errors.MessageTooLargeError().errno_name == "EMSGSIZE"

    def test_socket_error_message_defaults_to_errno(self):
        error = errors.NotConnectedError()
        assert "ENOTCONN" in str(error)


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig13" in out and "table6" in out

    def test_run_single(self, capsys):
        assert cli_main(["run", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "fig12" in out
        assert "144" in out  # the 8KB calibration anchor

    def test_run_unknown(self, capsys):
        # Bad invocations exit with the "usage" row of the errors table.
        assert cli_main(["run", "fig99"]) == errors.EXIT_CODES["usage"]

    def test_run_accepts_zero_padded_alias(self, capsys):
        assert cli_main(["run", "fig08"]) == 0
        assert "fig8" in capsys.readouterr().out

    def test_json_envelope_shape(self, capsys):
        import json

        assert cli_main(["calibration", "--json"]) == 0
        envelope = json.loads(capsys.readouterr().out)
        assert set(envelope) == {"ok", "kind", "data", "error"}
        assert envelope["ok"] is True
        assert envelope["kind"] == "calibration"
        assert envelope["error"] is None
        assert "core_hz" in envelope["data"]

    def test_json_envelope_failure(self, capsys):
        import json

        code = cli_main(["run", "fig99", "--json"])
        assert code == errors.EXIT_CODES["usage"]
        envelope = json.loads(capsys.readouterr().out)
        assert envelope["ok"] is False
        assert envelope["error"]["code"] == "usage"
        assert envelope["error"]["exit_code"] == code

    def test_exit_code_table(self):
        assert errors.EXIT_CODES["ok"] == 0
        assert errors.exit_code("nonsense") == errors.EXIT_CODES["failure"]
        # Every named outcome is distinct, so CI logs are unambiguous.
        values = list(errors.EXIT_CODES.values())
        assert len(values) == len(set(values))

    def test_calibration_dump(self, capsys):
        assert cli_main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "ce_switch_fixed" in out
        assert "core_hz" in out
