"""NSM health monitoring, quarantine + connection failover, GuestLib op
deadlines, and bounded CoreEngine delivery backpressure (§8)."""

import pytest

from repro.core.host import NetKernelHost
from repro.core.nqe import NQE_POOL, NqeOp
from repro.errors import ConfigurationError, SocketError, TimedOutError
from repro.net.fabric import Network
from repro.sim import Simulator
from repro.units import gbps, usec


def _host(sim, **kwargs):
    return NetKernelHost(sim, Network(sim, default_rate_bps=gbps(10),
                                      default_delay_sec=usec(25)), **kwargs)


class TestHealthMonitor:
    def test_heartbeats_flow_and_healthy_nsm_stays_in_service(self):
        sim = Simulator()
        host = _host(sim)
        host.add_nsm("nsm0", vcpus=1, stack="kernel")
        host.enable_failover(heartbeat_interval=1e-3,
                             detection_timeout=5e-3)
        sim.run(until=0.05)
        ce = host.coreengine
        assert ce.heartbeats_sent > 10
        assert ce.heartbeat_acks > 10
        assert ce.quarantined == {}

    def test_detection_timeout_must_exceed_interval(self):
        sim = Simulator()
        host = _host(sim)
        with pytest.raises(ConfigurationError):
            host.enable_failover(heartbeat_interval=5e-3,
                                 detection_timeout=5e-3)

    def test_stalled_nsm_detected_after_timeout(self):
        sim = Simulator()
        host = _host(sim)
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        host.enable_failover(heartbeat_interval=1e-3,
                             detection_timeout=5e-3)
        sim.call_at(0.02, lambda: nsm.servicelib.stall(0.1))
        sim.run(until=0.05)
        ce = host.coreengine
        assert nsm.nsm_id in ce.quarantined
        assert ce.quarantined[nsm.nsm_id] == "heartbeat-timeout"
        # Quarantine is permanent even though the stall itself ended.
        sim.run(until=0.2)
        assert nsm.nsm_id in ce.quarantined
        assert ce.nsms_quarantined == 1


class TestFailover:
    def test_crash_rebinds_vm_to_standby_and_resets_connections(self):
        sim = Simulator()
        host = _host(sim)
        primary = host.add_nsm("nsm-a", vcpus=1, stack="kernel")
        standby = host.add_nsm("nsm-b", vcpus=1, stack="kernel")
        nsm_srv = host.add_nsm("nsm-srv", vcpus=1, stack="kernel")
        server_vm = host.add_vm("server", vcpus=1, nsm=nsm_srv)
        client_vm = host.add_vm("client", vcpus=1, nsm=primary,
                                op_timeout=10e-3)
        host.enable_failover(heartbeat_interval=1e-3,
                             detection_timeout=5e-3)
        api_s = host.socket_api(server_vm)
        api_c = host.socket_api(client_vm)
        log = {"resets": 0, "ok_after_crash": 0, "errors": []}

        def server():
            listener = yield from api_s.socket()
            yield from api_s.bind(listener, 80)
            yield from api_s.listen(listener)
            while True:
                conn = yield from api_s.accept(listener)
                server_vm.spawn(echo(conn))

        def echo(conn):
            try:
                while True:
                    data = yield from api_s.recv(conn, 65536)
                    if not data:
                        break
                    yield from api_s.send(conn, data)
            except SocketError:
                pass

        def client():
            sock = None
            while sim.now < 0.18:
                try:
                    if sock is None:
                        sock = yield from api_c.socket()
                        yield from api_c.connect(sock, ("nsm-srv", 80))
                    yield from api_c.send(sock, b"ping")
                    data = yield from api_c.recv(sock, 4096)
                    assert data
                    if sim.now > 0.05:
                        log["ok_after_crash"] += 1
                    yield sim.timeout(1e-3)
                except TimedOutError:
                    sock = None
                    yield sim.timeout(1e-3)
                except SocketError as error:
                    if error.errno_name == "ECONNRESET":
                        log["resets"] += 1
                    else:
                        log["errors"].append(error.errno_name)
                    sock = None
                    yield sim.timeout(1e-3)

        server_vm.spawn(server())
        client_vm.spawn(client())
        sim.call_at(0.05, primary.servicelib.crash)
        sim.run(until=0.2)

        ce = host.coreengine
        assert primary.nsm_id in ce.quarantined
        assert ce.vm_to_nsm[client_vm.vm_id] == standby.nsm_id
        assert log["resets"] >= 1          # in-flight conn failed fast
        assert log["ok_after_crash"] > 5   # traffic resumed on the standby
        assert log["errors"] == []
        assert ce.conns_reset_on_failover >= 1
        assert ce.vms_failed_over == 1

    def test_crash_without_standby_fails_ops_fast_not_hung(self):
        sim = Simulator()
        host = _host(sim)
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        vm = host.add_vm("vm1", vcpus=1, nsm=nsm, op_timeout=10e-3)
        host.enable_failover(heartbeat_interval=1e-3,
                             detection_timeout=5e-3)
        api = host.socket_api(vm)
        outcome = {}

        def app():
            yield sim.timeout(0.03)  # quarantine has happened by now
            started = sim.now
            try:
                yield from api.socket()
            except SocketError as error:
                outcome["errno"] = error.errno_name
                outcome["latency"] = sim.now - started

        vm.spawn(app())
        sim.call_at(0.005, nsm.servicelib.crash)
        sim.run(until=0.1)
        assert nsm.nsm_id in host.coreengine.quarantined
        assert outcome["errno"] == "ECONNRESET"  # failed fast at the switch
        assert outcome["latency"] < 1e-3         # no deadline wait needed


class TestOpDeadlines:
    def test_non_idempotent_op_times_out_instead_of_hanging(self):
        sim = Simulator()
        host = _host(sim)
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        vm = host.add_vm("vm1", vcpus=1, nsm=nsm, op_timeout=5e-3)
        api = host.socket_api(vm)
        outcome = {}

        def app():
            try:
                yield from api.socket()
            except TimedOutError:
                outcome["timed_out_at"] = sim.now

        nsm.servicelib.crash()  # silent from t=0; no health monitor armed
        vm.spawn(app())
        sim.run(until=0.1)
        assert outcome["timed_out_at"] == pytest.approx(5e-3, rel=0.2)
        assert vm.guestlib.op_timeouts == 1
        assert vm.guestlib.op_retries == 0  # SOCKET is not idempotent

    def test_idempotent_op_retries_through_a_stall(self):
        sim = Simulator()
        host = _host(sim)
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        vm = host.add_vm("vm1", vcpus=1, nsm=nsm, op_timeout=5e-3,
                         max_op_retries=3)
        api = host.socket_api(vm)
        outcome = {}

        def app():
            sock = yield from api.socket()
            nsm.servicelib.stall(0.008)  # longer than the first deadline
            yield from api.setsockopt(sock, "nodelay", 1)
            outcome["value"] = yield from api.getsockopt(sock, "nodelay")

        vm.spawn(app())
        sim.run(until=0.1)
        assert outcome["value"] == 1
        assert vm.guestlib.op_retries >= 1
        assert vm.guestlib.op_timeouts >= 1


class TestDeliveryBackpressure:
    def test_full_ring_of_dead_consumer_drops_after_budget(self):
        """A crashed-but-undetected NSM stops draining its rings; once
        they fill, _deliver must drop after the stall budget instead of
        wedging the switch, and every dropped element must return to the
        pool."""
        outstanding_before = NQE_POOL.outstanding
        sim = Simulator()
        host = _host(sim)
        host.coreengine.ring_slots = 4
        nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")
        vm = host.add_vm("vm1", vcpus=1, nsm=nsm, op_timeout=2e-3)
        host.coreengine.deliver_stall_budget = 1e-3
        api = host.socket_api(vm)

        def app():
            for _ in range(12):
                try:
                    yield from api.socket()
                except SocketError:
                    pass

        nsm.servicelib.crash()
        vm.spawn(app())
        sim.run(until=0.1)
        ce = host.coreengine
        assert ce.nqes_dropped_backpressure > 0
        # Reclaim what is still parked in the dead NSM's 4-slot rings,
        # then let the VM poller consume the fail-fast results.
        ce.quarantine_nsm(nsm.nsm_id, reason="test-cleanup")
        sim.run(until=0.11)
        assert len(ce.table) == 0
        assert NQE_POOL.outstanding == outstanding_before

    def test_drop_nqe_returns_element_to_pool(self):
        sim = Simulator()
        host = _host(sim)
        ce = host.coreengine
        outstanding_before = NQE_POOL.outstanding
        dropped_before = ce.nqes_dropped
        nqe = NQE_POOL.acquire(NqeOp.DATA_ARRIVED, 1, 0, 1,
                               created_at=sim.now)
        assert NQE_POOL.outstanding == outstanding_before + 1
        ce._drop_nqe(nqe)
        assert NQE_POOL.outstanding == outstanding_before
        assert ce.nqes_dropped == dropped_before + 1
