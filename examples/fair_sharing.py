#!/usr/bin/env python3
"""Use case 2 (§6.2): VM-level fair bandwidth sharing.

A well-behaved VM (8 flows) and a selfish VM (8/16/24 flows) share one
bottleneck.  With per-flow CUBIC (today's TCP), bandwidth splits by flow
count; with the VM-level congestion-control NSM (a Seawall-style shared
window per VM), the split stays 50/50 no matter how many flows the
selfish VM opens — Fig. 9.

Both runs are packet-level simulations of the functional TCP engine;
this takes a minute or two.

Run:  python examples/fair_sharing.py [--quick]
"""

import sys

from repro.experiments.fig09_fairness import _run_one


def bar(share: float, width: int = 40) -> str:
    filled = int(share / 100.0 * width)
    return "#" * filled + "-" * (width - filled)


def main() -> None:
    quick = "--quick" in sys.argv
    duration = 0.8 if quick else 1.5
    print("VM A: 8 flows (well-behaved)   VM B: selfish\n")
    for label, selfish in (("1:1", 8), ("2:1", 16), ("3:1", 24)):
        base_a, base_b = _run_one(selfish, vm_level_cc=False,
                                  duration=duration)
        nk_a, nk_b = _run_one(selfish, vm_level_cc=True, duration=duration)
        base_share = 100 * base_a / (base_a + base_b)
        nk_share = 100 * nk_a / (nk_a + nk_b)
        print(f"VM B opens {selfish:2d} flows ({label}):")
        print(f"  per-flow CUBIC   VM A |{bar(base_share)}| "
              f"{base_share:4.1f}%")
        print(f"  VM-level CC NSM  VM A |{bar(nk_share)}| "
              f"{nk_share:4.1f}%\n")
    print("Per-flow fairness rewards opening more flows; the VMCC NSM "
          "makes the VM the unit of fairness (Fig. 9).")


if __name__ == "__main__":
    main()
