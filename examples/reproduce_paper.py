#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation.

Prints each experiment's rows next to the paper's reported values.  The
DES-backed experiments (fig9, fig21, table5) are packet-level
simulations; pass --quick to shrink them, or --only fig13,table6 to
select a subset.

Run:  python examples/reproduce_paper.py [--quick] [--only ids]
"""

import argparse
import sys
import time

from repro.experiments import REGISTRY, run_experiment

#: Runner kwargs for the heavyweight DES experiments under --quick.
QUICK_KWARGS = {
    "fig9": {"duration": 0.6},
    "fig21": {"scale": 0.02, "time_factor": 0.1},
    "table5": {"requests": 400, "concurrency": 80},
}

ORDER = ["fig7", "fig8", "table2", "fig9", "fig10", "fig11", "fig12",
         "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
         "fig20", "fig21", "table3", "table4", "table5", "table6",
         "table7"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shrink the DES experiments")
    parser.add_argument("--only", default="",
                        help="comma-separated experiment ids")
    args = parser.parse_args()

    selected = ([x.strip() for x in args.only.split(",") if x.strip()]
                or ORDER)
    unknown = [x for x in selected if x not in REGISTRY]
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 1

    for exp_id in selected:
        kwargs = QUICK_KWARGS.get(exp_id, {}) if args.quick else {}
        started = time.time()
        result = run_experiment(exp_id, **kwargs)
        elapsed = time.time() - started
        print(result.table_str())
        print(f"({elapsed:.1f}s wall)\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
