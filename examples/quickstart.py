#!/usr/bin/env python3
"""Quickstart: boot a NetKernel host, run an unmodified app, move bytes.

Builds the Fig. 2 architecture — a tenant VM with GuestLib, a kernel-stack
NSM with ServiceLib, CoreEngine switching NQEs between them — and runs a
tiny client/server pair written against plain BSD-style sockets.  The
same application code would run unchanged on the baseline architecture
(see fair_sharing.py for a side-by-side).

Run:  python examples/quickstart.py
"""

from repro import NetKernelHost, Network, Simulator
from repro.units import gbps, usec


def main() -> None:
    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(100),
                      default_delay_sec=usec(25))
    host = NetKernelHost(sim, network)

    # The operator provides the network stack as infrastructure:
    nsm = host.add_nsm("nsm0", vcpus=1, stack="kernel")

    # Two tenant VMs, both served by the same NSM (multiplexing!).
    vm_server = host.add_vm("vm-server", vcpus=1, nsm=nsm)
    vm_client = host.add_vm("vm-client", vcpus=1, nsm=nsm)
    api_server = host.socket_api(vm_server)
    api_client = host.socket_api(vm_client)

    def server():
        listener = yield from api_server.socket()
        yield from api_server.bind(listener, 80)
        yield from api_server.listen(listener, backlog=64)
        print(f"[{sim.now * 1e6:8.1f}us] server: listening on port 80")
        conn = yield from api_server.accept(listener)
        print(f"[{sim.now * 1e6:8.1f}us] server: accepted "
              f"{conn.remote}")
        request = yield from api_server.recv(conn, 4096)
        print(f"[{sim.now * 1e6:8.1f}us] server: got {request!r}")
        yield from api_server.send(conn, b"HTTP/1.1 200 OK\r\n\r\nhello "
                                         b"from the NSM-backed socket")
        yield from api_server.close(conn)

    def client():
        yield sim.timeout(0.001)  # let the server bind first
        sock = yield from api_client.socket()
        # The address is the NSM's network identity: the VM has no vNIC.
        yield from api_client.connect(sock, ("nsm0", 80))
        print(f"[{sim.now * 1e6:8.1f}us] client: connected")
        yield from api_client.send(sock, b"GET / HTTP/1.1\r\n\r\n")
        reply = yield from api_client.recv(sock, 4096)
        print(f"[{sim.now * 1e6:8.1f}us] client: reply {reply!r}")
        yield from api_client.close(sock)

    vm_server.spawn(server())
    vm_client.spawn(client())
    sim.run(until=1.0)

    stats = host.coreengine.stats()
    print(f"\nCoreEngine switched {stats['nqes_switched']} NQEs in "
          f"{stats['batches']} batches (avg {stats['avg_batch']:.2f}/batch)")
    cycles = host.cycles_by_role()
    print("CPU cycles by role:",
          {role: f"{c / 1e3:.1f}K" for role, c in cycles.items()})


if __name__ == "__main__":
    main()
