#!/usr/bin/env python3
"""Use case 1 (§6.1): multiplexing bursty application gateways.

Generates the Fig. 7 trace (three most-utilized AGs), then compares core
provisioning: Baseline dedicates 4 cores per AG; NetKernel consolidates
their TCP work onto one right-sized NSM and gives each AG a single core
for its application logic.  Also packs a whole fleet onto a 32-core
machine (Table 2).

Run:  python examples/multiplexing_gateways.py
"""

from repro.experiments.fig07_trace import canonical_ags
from repro.model import multiplexing as mx
from repro.trace.ag_trace import generate_fleet


def sparkline(values, width=60) -> str:
    blocks = " .:-=+*#%@"
    step = max(1, len(values) // width)
    sampled = [max(values[i:i + step]) for i in range(0, len(values), step)]
    top = max(sampled) or 1.0
    return "".join(blocks[min(9, int(v / top * 9))] for v in sampled)


def main() -> None:
    traces = canonical_ags()
    print("Fig. 7 — one hour of per-minute load, normalized RPS:")
    for trace in traces:
        print(f"  {trace.name}  peak={trace.peak:5.1f}  mean={trace.mean:4.1f}"
              f"  |{sparkline(trace.values)}|")

    print("\nFig. 8 — consolidating those three AGs:")
    result = mx.fig8_comparison(traces, provisioned_cores=4)
    print(f"  Baseline:  {result['baseline_cores']} cores "
          "(4 per AG, provisioned for peak)")
    print(f"  NetKernel: {result['netkernel_cores']} cores "
          f"({len(traces)} AG cores + {result['nsm_cores']}-core NSM "
          "+ 1 CoreEngine)")
    print(f"  Per-core RPS improvement: "
          f"x{result['per_core_improvement']:.2f} "
          "(paper: 12 -> 9 cores, +33%)")

    print("\nTable 2 — packing a fleet onto one 32-core machine:")
    fleet = generate_fleet(200, seed=7)
    packing = mx.table2_packing(fleet)
    print(f"  Baseline (2 reserved cores per AG): "
          f"{packing['baseline_ags']} AGs")
    print(f"  NetKernel (1 core per AG + {packing['nsm_cores']}-core NSM "
          f"+ CoreEngine): {packing['netkernel_ags']} AGs")
    print(f"  Cores saved: {packing['cores_saved_fraction'] * 100:.1f}% "
          "(paper: >40%)")
    print(f"  NSM mean utilization: "
          f"{packing['nsm_mean_utilization'] * 100:.0f}%; under the 60% "
          f"limit {packing['fraction_minutes_under_limit'] * 100:.0f}% "
          "of the time")


if __name__ == "__main__":
    main()
