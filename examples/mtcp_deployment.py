#!/usr/bin/env python3
"""Use case 3 (§6.3): deploying mTCP without any API change.

The same epoll server + closed-loop load generator — written purely
against BSD-style sockets — runs first over the kernel-stack NSM, then
over the mTCP NSM.  The application is not modified in any way; the
operator just points the VM at a different NSM.  mTCP's kernel-bypass
design shows up directly in requests/second (Table 3 / Fig. 20).

The paper names nginx *and redis* as the applications mTCP could not
support natively; the last section runs the protocol-speaking redis
model over both NSMs, byte-identical application code.

Run:  python examples/mtcp_deployment.py
"""

from repro import NetKernelHost, Network, Simulator
from repro.apps.epoll_server import EpollServer
from repro.apps.load_gen import LoadGenerator
from repro.model import throughput as tp
from repro.units import gbps, usec


def serve_with(stack: str, requests: int = 800) -> float:
    """Run the UNMODIFIED app over the given NSM stack; returns RPS."""
    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(100),
                      default_delay_sec=usec(25))
    host = NetKernelHost(sim, network)
    nsm_server = host.add_nsm("srv-nsm", vcpus=1, stack=stack)
    nsm_client = host.add_nsm("cli-nsm", vcpus=2, stack=stack)
    vm_server = host.add_vm("server", vcpus=1, nsm=nsm_server)
    vm_client = host.add_vm("client", vcpus=2, nsm=nsm_client)

    server = EpollServer(sim, host.socket_api(vm_server), port=80,
                         request_size=64, response_size=64,
                         app_cycles_per_request=2500.0,
                         cores=vm_server.cores)
    server.start(vm_server)
    load = LoadGenerator(sim, host.socket_api(vm_client), ("srv-nsm", 80),
                         total_requests=requests, concurrency=64)
    sim.run(until=0.002)
    load.start(vm_client)
    sim.run(until=60.0)
    assert load.stats.errors == 0, "load generator saw errors"
    return load.stats.rps


def redis_over(stack: str) -> dict:
    """The unmodified redis server/client over the given NSM."""
    from repro.apps.redis import RedisClient, RedisServer

    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(100),
                      default_delay_sec=usec(25))
    host = NetKernelHost(sim, network)
    nsm_s = host.add_nsm("srv-nsm", vcpus=1, stack=stack)
    nsm_c = host.add_nsm("cli-nsm", vcpus=1, stack=stack)
    server_vm = host.add_vm("server", vcpus=1, nsm=nsm_s)
    client_vm = host.add_vm("client", vcpus=1, nsm=nsm_c)
    server = RedisServer(sim, host.socket_api(server_vm),
                         cores=server_vm.cores)
    server.start(server_vm)
    out = {}

    def session():
        yield sim.timeout(0.002)
        client = RedisClient(sim, host.socket_api(client_vm),
                             ("srv-nsm", 6379))
        yield from client.connect()
        yield from client.set(b"stack", stack.encode())
        out["value"] = yield from client.get(b"stack")
        started = sim.now
        for _ in range(200):
            yield from client.ping()
        out["ping_us"] = (sim.now - started) / 200 * 1e6
        yield from client.close()

    client_vm.spawn(session())
    sim.run(until=10.0)
    return out


def main() -> None:
    print("Functional simulation (same app binary, different NSM):")
    kernel_rps = serve_with("kernel")
    mtcp_rps = serve_with("mtcp")
    print(f"  kernel-stack NSM : {kernel_rps / 1e3:7.1f} K requests/s")
    print(f"  mTCP NSM         : {mtcp_rps / 1e3:7.1f} K requests/s "
          f"(x{mtcp_rps / kernel_rps:.2f})")

    print("\nCalibrated capacity model (nginx under ab, Table 3):")
    print(f"  {'vCPUs':>6} {'kernel':>10} {'mTCP':>10} {'speedup':>8}")
    for vcpus in (1, 2, 4):
        kernel = tp.requests_per_second("netkernel", vcpus=vcpus,
                                        app="nginx", reuseport=False)
        mtcp = tp.requests_per_second("netkernel", stack="mtcp",
                                      vcpus=vcpus, app="nginx",
                                      reuseport=False)
        print(f"  {vcpus:>6} {kernel / 1e3:>9.1f}K {mtcp / 1e3:>9.1f}K "
              f"{mtcp / kernel:>7.2f}x")
    print("\nPaper (Table 3): 71.9K/133.6K/200.1K vs 98.1K/183.6K/379.2K "
          "— a 1.4x-1.9x win, no application change.")

    print("\nUnmodified redis over both NSMs:")
    for stack in ("kernel", "mtcp"):
        out = redis_over(stack)
        print(f"  {stack:>6} NSM: GET -> {out['value']!r}, "
              f"PING RTT {out['ping_us']:.1f} us")


if __name__ == "__main__":
    main()
