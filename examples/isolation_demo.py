#!/usr/bin/env python3
"""§7.6 / Fig. 21: isolation of VMs sharing one NSM.

Three tenant VMs share a kernel-stack NSM with a 10G VF.  The operator
caps VM1 at 1 Gbps and VM2 at 500 Mbps with CoreEngine token buckets;
VM3 is uncapped.  They arrive and depart on the paper's schedule.  The
run is a full packet-level NetKernel simulation (takes a minute or two
at the default scale; --quick shrinks it).

Run:  python examples/isolation_demo.py [--quick]
"""

import sys

from repro.experiments.fig21_isolation import SCHEDULE, run


def ascii_series(rows, name, scale_to, width_char="█"):
    line = []
    for row in rows:
        value = row[name]
        line.append(str(min(9, int(value / scale_to * 9))) if value > 0.02
                    else ".")
    return "".join(line)


def main() -> None:
    quick = "--quick" in sys.argv
    kwargs = {"scale": 0.02, "time_factor": 0.1} if quick else {}
    print("running the Fig. 21 isolation scenario "
          f"({'quick' if quick else 'full'} scale)...\n")
    result = run(**kwargs)
    rows = result.row_dicts()

    print("throughput intensity over time (0-9 = share of 10G; '.' idle):")
    for name, start, stop, cap in SCHEDULE:
        cap_label = f"cap {cap / 1e9:.1f}G" if cap else "uncapped"
        print(f"  {name} [{start:>4.1f}s..{stop:>4.1f}s, {cap_label:>9}] "
              f"|{ascii_series(rows, name, 10.0)}|")

    print()
    sampled = [r for r in rows
               if abs(r["t_sec"] * 2 % 10) < 0.2 or r is rows[-1]]
    print(f"{'t(s)':>6} {'vm1':>6} {'vm2':>6} {'vm3':>6}   (Gbps, paper scale)")
    for row in sampled:
        print(f"{row['t_sec']:>6.1f} {row['vm1']:>6.2f} {row['vm2']:>6.2f} "
              f"{row['vm3']:>6.2f}")
    print("\n" + result.notes)


if __name__ == "__main__":
    main()
