#!/usr/bin/env python3
"""Deploying DCTCP as an NSM — the §1 motivation made concrete.

"Our community is still finding ways to deploy DCTCP in the public
cloud" (§1).  Under NetKernel the operator just boots an NSM whose stack
uses DCTCP; tenants change nothing.  This demo runs the same bulk
transfer twice — once over a CUBIC NSM, once over a DCTCP NSM — through
an ECN-marking bottleneck, and compares the switch queue occupancy:
DCTCP's whole point is keeping queues shallow at full throughput.

Run:  python examples/dctcp_deployment.py
"""

from repro import NetKernelHost, Network, Simulator
from repro.net.link import Link
from repro.stack.cc.cubic import CubicCC
from repro.stack.cc.dctcp import DctcpCC
from repro.units import KiB, gbps, mbps, usec


def run_with(cc_name: str):
    sim = Simulator()
    network = Network(sim, default_rate_bps=gbps(10),
                      default_delay_sec=usec(50))
    bottleneck = Link(sim, mbps(300), delay_sec=usec(100),
                      queue_bytes=KiB(512), ecn_threshold_bytes=KiB(64),
                      name="tor-switch")
    network.set_bottleneck(bottleneck)
    host = NetKernelHost(sim, network)

    if cc_name == "dctcp":
        def cc_factory(mss):
            return DctcpCC(mss)
    else:
        def cc_factory(mss):
            return CubicCC(mss, clock=lambda: sim.now)

    # The operator's one-line deployment decision:
    # Jumbo MSS keeps the packet-level simulation quick; the queueing
    # contrast between CUBIC and DCTCP is MSS-independent.
    nsm_tx = host.add_nsm("nsm-tx", vcpus=1, stack="kernel",
                          cc_factory=cc_factory,
                          stack_kwargs={"mss": 7240})
    nsm_rx = host.add_nsm("nsm-rx", vcpus=1, stack="kernel",
                          cc_factory=cc_factory,
                          stack_kwargs={"mss": 7240})
    vm_tx = host.add_vm("sender", vcpus=1, nsm=nsm_tx)
    vm_rx = host.add_vm("receiver", vcpus=1, nsm=nsm_rx)
    api_tx, api_rx = host.socket_api(vm_tx), host.socket_api(vm_rx)
    stats = {"bytes": 0}
    queue_samples = []

    def receiver():
        listener = yield from api_rx.socket()
        yield from api_rx.bind(listener, 80)
        yield from api_rx.listen(listener)
        conn = yield from api_rx.accept(listener)
        while True:
            data = yield from api_rx.recv(conn, 1 << 20)
            if not data:
                break
            stats["bytes"] += len(data)

    def sender():
        yield sim.timeout(0.001)
        sock = yield from api_tx.socket()
        yield from api_tx.connect(sock, ("nsm-rx", 80))
        while sim.now < 0.5:
            yield from api_tx.send(sock, b"d" * 65536)
        yield from api_tx.close(sock)

    def probe():
        while sim.now < 0.5:
            yield sim.timeout(0.002)
            queue_samples.append(bottleneck.backlog_bytes)

    vm_rx.spawn(receiver())
    vm_tx.spawn(sender())
    sim.process(probe())
    sim.run(until=0.8)

    mean_queue = sum(queue_samples) / max(1, len(queue_samples))
    return {
        "goodput_mbps": stats["bytes"] * 8 / 0.5 / 1e6,
        "mean_queue_kib": mean_queue / 1024,
        "peak_queue_kib": max(queue_samples) / 1024,
        "ecn_marks": bottleneck.marked_packets,
        "drops": bottleneck.dropped_packets,
    }


def main() -> None:
    print("Same tenant VM and app; the operator swaps the NSM's "
          "congestion control:\n")
    results = {name: run_with(name) for name in ("cubic", "dctcp")}
    header = f"{'':>14} {'goodput':>10} {'mean queue':>11} " \
             f"{'peak queue':>11} {'ECN marks':>10} {'drops':>6}"
    print(header)
    for name, r in results.items():
        print(f"  {name:>10}   {r['goodput_mbps']:7.0f} M "
              f"{r['mean_queue_kib']:8.1f} K {r['peak_queue_kib']:8.1f} K "
              f"{r['ecn_marks']:>10} {r['drops']:>6}")
    cubic, dctcp = results["cubic"], results["dctcp"]
    print(f"\nDCTCP keeps the switch queue ~"
          f"{cubic['mean_queue_kib'] / max(dctcp['mean_queue_kib'], 0.1):.0f}x "
          "shallower at comparable goodput — deployed by the operator, "
          "invisible to the tenant.")


if __name__ == "__main__":
    main()
