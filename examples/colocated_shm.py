#!/usr/bin/env python3
"""Use case 4 (§6.4): shared-memory networking between colocated VMs.

Two VMs of the same tenant land on one host.  Under NetKernel the
operator *knows* this (the network stack is infrastructure), so it can
serve the pair with a shared-memory NSM that copies message chunks
between their hugepage regions and skips TCP entirely.  Baseline VMs
can't do this — they have no idea where the other endpoint is.

Shows a functional transfer through the shm NSM plus the Fig. 10
capacity sweep (NetKernel ~2x Baseline, ~100G at large messages).

Run:  python examples/colocated_shm.py
"""

from repro import NetKernelHost, Network, Simulator
from repro.model import throughput as tp
from repro.units import gbps, usec


def functional_demo() -> None:
    sim = Simulator()
    host = NetKernelHost(sim, Network(sim, default_rate_bps=gbps(100),
                                      default_delay_sec=usec(25)))
    nsm = host.add_nsm("shm-nsm", vcpus=2, stack="shm")
    vm_a = host.add_vm("tenant-a1", vcpus=2, nsm=nsm, user="tenant-a")
    vm_b = host.add_vm("tenant-a2", vcpus=2, nsm=nsm, user="tenant-a")
    api_a, api_b = host.socket_api(vm_a), host.socket_api(vm_b)
    moved = {}

    def receiver():
        listener = yield from api_a.socket()
        yield from api_a.bind(listener, 7000)
        yield from api_a.listen(listener)
        conn = yield from api_a.accept(listener)
        total = 0
        while True:
            data = yield from api_a.recv(conn, 1 << 20)
            if not data:
                break
            total += len(data)
        moved["bytes"] = total
        moved["at"] = sim.now

    def sender():
        yield sim.timeout(0.001)
        sock = yield from api_b.socket()
        yield from api_b.connect(sock, ("shm-nsm", 7000))
        started = sim.now
        payload = b"m" * 65536
        for _ in range(256):  # 16 MiB
            yield from api_b.send(sock, payload)
        yield from api_b.close(sock)
        moved["send_time"] = sim.now - started

    vm_a.spawn(receiver())
    vm_b.spawn(sender())
    sim.run(until=5.0)
    gbps_measured = moved["bytes"] * 8 / (moved["at"] - 0.001) / 1e9
    print(f"functional shm transfer: {moved['bytes'] / 2**20:.0f} MiB "
          f"in {(moved['at'] - 0.001) * 1e3:.2f} ms of simulated time "
          f"(~{gbps_measured:.0f} Gbps, no TCP processing)")
    print(f"shm NSM copied {nsm.stack.bytes_copied / 2**20:.0f} MiB "
          "between hugepage regions\n")


def capacity_sweep() -> None:
    print("Fig. 10 — colocated-VM throughput vs message size:")
    print(f"  {'size':>6} {'baseline TCP':>13} {'shm NSM':>9} {'speedup':>8}")
    for size in (64, 256, 1024, 4096, 8192):
        baseline = tp.baseline_colocated_gbps(size)
        netkernel = tp.shm_throughput_gbps(size)
        print(f"  {size:>6} {baseline:>11.1f} G {netkernel:>7.1f} G "
              f"{netkernel / baseline:>7.2f}x")
    print("\nPaper: ~100 Gbps with 7 cores total, ~2x TCP Cubic.")


if __name__ == "__main__":
    functional_demo()
    capacity_sweep()
